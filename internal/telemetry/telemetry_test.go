package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"

	"peel/internal/invariant"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter value = %d, want 42", got)
	}
	var nilC *Counter
	nilC.Inc()
	nilC.Add(7)
	if got := nilC.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge value = %d, want 3 (last write)", got)
	}
	if got := g.Max(); got != 10 {
		t.Fatalf("gauge max = %d, want 10 (high-water mark)", got)
	}
	g.SetMax(99)
	if got := g.Value(); got != 3 {
		t.Fatalf("SetMax changed value to %d, want 3", got)
	}
	if got := g.Max(); got != 99 {
		t.Fatalf("gauge max after SetMax = %d, want 99", got)
	}
	g.SetMax(50) // lower than the mark: must not regress
	if got := g.Max(); got != 99 {
		t.Fatalf("gauge max regressed to %d, want 99", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.SetMax(1)
	if nilG.Value() != 0 || nilG.Max() != 0 {
		t.Fatal("nil gauge must read 0")
	}
}

func TestLog2LayoutBuckets(t *testing.T) {
	l := Log2Layout()
	if got := l.buckets(); got != 65 {
		t.Fatalf("log2 bucket count = %d, want 65", got)
	}
	cases := []struct {
		v      int64
		bucket int
	}{
		{math.MinInt64, 0},
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 62, 63},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := l.bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		// Every value must be ≤ its bucket's inclusive upper bound and
		// > the previous bucket's bound (for positive values).
		b := l.bucketOf(c.v)
		if c.v > l.UpperBound(b) {
			t.Errorf("value %d above UpperBound(%d) = %d", c.v, b, l.UpperBound(b))
		}
		if b > 0 && c.v <= l.UpperBound(b-1) {
			t.Errorf("value %d should be above UpperBound(%d) = %d", c.v, b-1, l.UpperBound(b-1))
		}
	}
	bounds := []struct {
		i    int
		want int64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 3}, {3, 7}, {10, 1023},
		{63, math.MaxInt64}, {64, math.MaxInt64}, {100, math.MaxInt64},
	}
	for _, b := range bounds {
		if got := l.UpperBound(b.i); got != b.want {
			t.Errorf("log2 UpperBound(%d) = %d, want %d", b.i, got, b.want)
		}
	}
}

func TestLinearLayoutBuckets(t *testing.T) {
	depth := LinearLayout(0, 1, 33) // the steiner.tree_depth layout
	cases := []struct {
		v      int64
		bucket int
	}{
		{-1, 0}, {0, 0}, {1, 1}, {31, 31}, {32, 32}, {33, 32}, {1000, 32},
	}
	for _, c := range cases {
		if got := depth.bucketOf(c.v); got != c.bucket {
			t.Errorf("depth bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	if got := depth.UpperBound(0); got != 0 {
		t.Errorf("depth UpperBound(0) = %d, want 0", got)
	}
	if got := depth.UpperBound(31); got != 31 {
		t.Errorf("depth UpperBound(31) = %d, want 31", got)
	}
	if got := depth.UpperBound(32); got != math.MaxInt64 {
		t.Errorf("depth UpperBound(32) = %d, want MaxInt64 (open last bucket)", got)
	}

	wide := LinearLayout(10, 5, 4)
	wideCases := []struct {
		v      int64
		bucket int
	}{
		{3, 0}, {10, 0}, {14, 0}, {15, 1}, {19, 1}, {24, 2}, {25, 3}, {29, 3}, {1000, 3},
	}
	for _, c := range wideCases {
		if got := wide.bucketOf(c.v); got != c.bucket {
			t.Errorf("wide bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	for i, want := range []int64{14, 19, 24, math.MaxInt64} {
		if got := wide.UpperBound(i); got != want {
			t.Errorf("wide UpperBound(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestLinearLayoutRejectsDegenerate(t *testing.T) {
	for _, c := range []struct{ width, n int64 }{{0, 4}, {-1, 4}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LinearLayout(0, %d, %d) did not panic", c.width, c.n)
				}
			}()
			LinearLayout(0, c.width, int(c.n))
		}()
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	s := NewSink(0)
	h := s.Histogram("h", Log2Layout())
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	for _, v := range []int64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 10 {
		t.Fatalf("sum = %d, want 10", got)
	}
	// Buckets: 1 → b1, {2,3} → b2, 4 → b3.
	for i, want := range map[int]uint64{1: 1, 2: 2, 3: 1} {
		if got := h.Bucket(i); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if got := h.Bucket(-1); got != 0 {
		t.Errorf("out-of-range bucket = %d, want 0", got)
	}
	// Quantiles return the holding bucket's inclusive upper bound.
	if got := h.Quantile(0.50); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	if got := h.Quantile(0.99); got != 3 {
		t.Errorf("p99 = %d, want 3", got)
	}
	if got := h.Quantile(1.0); got != 7 {
		t.Errorf("p100 = %d, want 7 (bucket [4,7] bound)", got)
	}
	if got := h.Quantile(0.0001); got != 1 {
		t.Errorf("tiny quantile = %d, want 1 (rank clamps to first observation)", got)
	}
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read 0")
	}
}

func TestHistogramLayoutMismatchPanics(t *testing.T) {
	s := NewSink(0)
	h1 := s.Histogram("dup", Log2Layout())
	if h2 := s.Histogram("dup", Log2Layout()); h2 != h1 {
		t.Fatal("same name + same layout must return the same histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting layout for the same name did not panic")
		}
	}()
	s.Histogram("dup", LinearLayout(0, 1, 8))
}

func TestNilSinkIsInert(t *testing.T) {
	var s *Sink
	if s.Counter("c") != nil || s.Gauge("g") != nil || s.Histogram("h", Log2Layout()) != nil {
		t.Fatal("nil sink must hand out nil primitives")
	}
	if s.Recorder() != nil {
		t.Fatal("nil sink recorder must be nil")
	}
	s.ObserveLink("x", LinkStat{Bytes: 1})
	s.RecordSample(Sample{})
	s.NoteAbort("ignored")
	if _, ok := s.Aborted(); ok {
		t.Fatal("nil sink cannot be aborted")
	}
	if s.NextRunID() != 0 || s.Samples() != nil {
		t.Fatal("nil sink must read empty")
	}
	r := s.Report("label")
	if r.Schema != SchemaVersion || len(r.Counters) != 0 {
		t.Fatal("nil sink report must be empty but schema-stamped")
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(0, KindLinkDown, int64(i), 0, 0)
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("len = %d, want 4 (ring capacity)", got)
	}
	events := r.Dump()
	if len(events) != 4 {
		t.Fatalf("dump returned %d events, want 4", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(6 + i) // the last 4 of 10, oldest first
		if e.Seq != wantSeq || e.A != int64(wantSeq) {
			t.Errorf("dump[%d] = seq %d a=%d, want seq %d", i, e.Seq, e.A, wantSeq)
		}
	}
}

func TestRecorderPartialDump(t *testing.T) {
	r := NewRecorder(8)
	r.Record(5, KindLinkDown, 1, 2, 3)
	r.Record(9, KindLinkUp, 1, 2, 0)
	events := r.Dump()
	if len(events) != 2 || r.Total() != 2 {
		t.Fatalf("dump len=%d total=%d, want 2/2", len(events), r.Total())
	}
	if events[0].Kind != KindLinkDown || events[1].Kind != KindLinkUp {
		t.Fatalf("dump order wrong: %v then %v", events[0].Kind, events[1].Kind)
	}
	if events[0].Seq != 0 || events[1].Seq != 1 {
		t.Fatalf("seqs = %d,%d, want 0,1", events[0].Seq, events[1].Seq)
	}
}

func TestRecorderFrameEventGate(t *testing.T) {
	r := NewRecorder(8)
	r.Record(0, KindFrameEnqueue, 0, 1, 512)
	r.Record(0, KindFrameDequeue, 0, 1, 512)
	if got := r.Total(); got != 0 {
		t.Fatalf("gated frame events recorded anyway: total = %d", got)
	}
	if r.FrameEvents() {
		t.Fatal("frame events must default off")
	}
	r.SetFrameEvents(true)
	if !r.FrameEvents() {
		t.Fatal("SetFrameEvents(true) did not take")
	}
	r.Record(0, KindFrameEnqueue, 0, 1, 512)
	r.Record(0, KindFrameDrop, 0, 1, 1) // never gated
	if got := r.Total(); got != 2 {
		t.Fatalf("total = %d, want 2 after enabling frame events", got)
	}
	var nilR *Recorder
	nilR.Record(0, KindLinkDown, 0, 0, 0)
	nilR.SetFrameEvents(true)
	if nilR.FrameEvents() || nilR.Total() != 0 || nilR.Len() != 0 || nilR.Dump() != nil {
		t.Fatal("nil recorder must be inert")
	}
}

func TestRecorderWriteTo(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(0, KindChaosEvent, int64(i), 0, 0)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "flight recorder: 2 of 5 events retained\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "#3 ") || !strings.Contains(out, "#4 ") {
		t.Fatalf("dump missing retained events:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindFrameEnqueue; k <= KindAbort; k++ {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind renders %q", got)
	}
}

func TestEnableRestore(t *testing.T) {
	prev := Active()
	s1 := NewSink(0)
	restore1 := Enable(s1)
	if Active() != s1 {
		t.Fatal("Enable did not install the sink")
	}
	s2 := NewSink(0)
	restore2 := Enable(s2)
	if Active() != s2 {
		t.Fatal("nested Enable did not install")
	}
	restore2()
	if Active() != s1 {
		t.Fatal("restore did not reinstate the previous sink")
	}
	restore1()
	if Active() != prev {
		t.Fatal("restore did not reinstate the original state")
	}
}

func TestNoteAbortFirstReasonWins(t *testing.T) {
	s := NewSink(0)
	if _, ok := s.Aborted(); ok {
		t.Fatal("fresh sink reads aborted")
	}
	s.NoteAbort("first")
	s.NoteAbort("second")
	reason, ok := s.Aborted()
	if !ok || reason != "first" {
		t.Fatalf("aborted = %q/%v, want first/true", reason, ok)
	}
	events := s.Recorder().Dump()
	if len(events) != 2 || events[0].Kind != KindAbort {
		t.Fatalf("abort events not recorded: %v", events)
	}
}

func TestObserveLinkAggregation(t *testing.T) {
	s := NewSink(0)
	s.ObserveLink("a>b", LinkStat{Bytes: 1000, Frames: 2, Drops: 1, Downs: 1,
		DownPs: 50, ElapsedPs: 500_000_000_000, CapBps: 100e9})
	s.ObserveLink("a>b", LinkStat{Bytes: 11_500_000_000, Frames: 3, Drops: 0, Downs: 2,
		DownPs: 70, ElapsedPs: 500_000_000_000, CapBps: 400e9})
	r := s.Report("")
	if len(r.Links) != 1 {
		t.Fatalf("links = %d, want 1 aggregate", len(r.Links))
	}
	l := r.Links[0]
	if l.Link != "a>b" || l.Runs != 2 || l.Bytes != 11_500_001_000 ||
		l.Frames != 5 || l.Drops != 1 || l.Downs != 3 || l.DownPs != 120 {
		t.Fatalf("aggregate wrong: %+v", l)
	}
	// Utilization uses the max capacity seen and the summed elapsed time:
	// 11.5e9 B × 8 bits ÷ (400e9 bps × 1 s) = 0.23.
	if got := l.Utilization; math.Abs(got-0.230000002) > 1e-6 {
		t.Fatalf("utilization = %v, want ≈0.23", got)
	}
	if (LinkStat{Bytes: 100}).Utilization() != 0 {
		t.Fatal("utilization without capacity or elapsed time must be 0")
	}
}

func TestConcurrentWriters(t *testing.T) {
	const workers, each = 8, 1000
	s := NewSink(64)
	c := s.Counter("c")
	g := s.Gauge("g")
	h := s.Histogram("h", Log2Layout())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.SetMax(int64(w*each + i))
				h.Observe(int64(i + 1))
				s.Recorder().Record(0, KindChaosEvent, int64(w), int64(i), 0)
				// Concurrent registration of the same names must converge
				// on one primitive.
				s.Counter("c").Add(0)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := g.Max(); got != workers*each-1 {
		t.Fatalf("gauge max = %d, want %d", got, workers*each-1)
	}
	if got := h.Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
	if got := s.Recorder().Total(); got != workers*each {
		t.Fatalf("recorder total = %d, want %d", got, workers*each)
	}
	if got := s.Recorder().Len(); got != 64 {
		t.Fatalf("recorder len = %d, want ring capacity 64", got)
	}
}

// TestInvariantTraceDumperRegistered pins the init-time wiring that lets
// invtest.Main and peelsim -check dump the flight recorder on invariant
// violations without importing this package.
func TestInvariantTraceDumperRegistered(t *testing.T) {
	s := NewSink(8)
	restore := Enable(s)
	defer restore()
	s.Recorder().Record(0, KindLinkDown, 1, 2, 3)
	var b strings.Builder
	invariant.DumpTrace(&b)
	if !strings.Contains(b.String(), "link-down") {
		t.Fatalf("registered dumper did not write the recorder:\n%q", b.String())
	}
	off := Enable(nil)
	var quiet strings.Builder
	invariant.DumpTrace(&quiet)
	off()
	if quiet.Len() != 0 {
		t.Fatalf("dumper wrote without an armed sink: %q", quiet.String())
	}
}

// TestDisabledHookAllocs pins the tentpole's core promise: a hook point in
// a hot path allocates nothing when telemetry is off.
func TestDisabledHookAllocs(t *testing.T) {
	restore := Enable(nil)
	defer restore()
	allocs := testing.AllocsPerRun(1000, func() {
		if ts := Active(); ts != nil {
			ts.Counter("never").Inc()
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled hook allocates %v allocs/op, want 0", allocs)
	}
}

// TestArmedHotPathAllocs pins the armed fast path: cached primitives and
// the (preallocated) flight recorder never allocate per update.
func TestArmedHotPathAllocs(t *testing.T) {
	s := NewSink(64)
	restore := Enable(s)
	defer restore()
	c := s.Counter("hot")
	h := s.Histogram("hist", Log2Layout())
	g := s.Gauge("gauge")
	rec := s.Recorder()
	var v int64
	checks := []struct {
		name string
		fn   func()
	}{
		{"counter inc", func() { c.Inc() }},
		{"histogram observe", func() { v++; h.Observe(v) }},
		{"gauge setmax", func() { v++; g.SetMax(v) }},
		{"recorder record", func() { rec.Record(0, KindChaosEvent, 1, 2, 3) }},
		{"recorder gated frame event", func() { rec.Record(0, KindFrameEnqueue, 1, 2, 3) }},
		{"registered name lookup", func() { s.Counter("hot").Inc() }},
	}
	for _, ck := range checks {
		if allocs := testing.AllocsPerRun(1000, ck.fn); allocs != 0 {
			t.Errorf("%s allocates %v allocs/op, want 0", ck.name, allocs)
		}
	}
}
