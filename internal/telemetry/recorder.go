package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"peel/internal/invariant"
	"peel/internal/sim"
)

// Register the active sink's flight recorder as the invariant layer's
// trace dumper: any harness that prints a violation report
// (invtest.Main, peelsim -check) attaches the event history that led up
// to the failure, without importing this package.
func init() {
	invariant.SetTraceDumper(func(w io.Writer) {
		if s := Active(); s != nil {
			s.Recorder().WriteTo(w)
		}
	})
}

// Kind classifies a flight-recorder event.
type Kind uint8

// The event taxonomy. DESIGN.md's "Observability" section documents each;
// Event.String renders the operand meanings.
const (
	// KindFrameEnqueue: a frame entered a channel queue (A=from, B=to,
	// V=bytes). Recorded only with frame events enabled — per-frame
	// tracing floods the bounded ring otherwise.
	KindFrameEnqueue Kind = iota + 1
	// KindFrameDequeue: a frame finished serializing (A=from, B=to,
	// V=bytes). Frame-events gated, like enqueue.
	KindFrameDequeue
	// KindFrameDrop: frames lost to a dead link (A=from, B=to, V=frames
	// dropped — a queue flush drops several at once). Always recorded.
	KindFrameDrop
	// KindLossDrop: one frame lost to the configured random loss rate
	// (A=node the frame was delivered toward, V=bytes).
	KindLossDrop
	// KindLinkDown / KindLinkUp: a directed channel transitioned (A=from
	// node, B=to node; V carries the frames flushed on down, 0 on up).
	// Both directions of a link transition together, so each failure
	// yields an event pair.
	KindLinkDown
	KindLinkUp
	// KindRepairDetect: the collective watchdog declared a stall
	// (A=collective ID, V=no-progress time in ps at declaration).
	KindRepairDetect
	// KindRepairInstall: repair rules are in and the repair flow (or
	// unicast detours) started (A=collective ID, V=ps since detection).
	KindRepairInstall
	// KindRepairComplete: receiver progress resumed after a repair
	// (A=collective ID, V=ps since install).
	KindRepairComplete
	// KindUnicastFallback: repair-tree construction failed; one receiver
	// is being recovered over a unicast detour (A=collective ID,
	// B=receiver).
	KindUnicastFallback
	// KindAbandon: the repair budget ran out and receivers were
	// abandoned (A=collective ID, V=receivers abandoned).
	KindAbandon
	// KindControllerInstall: the SDN controller finished one rule push
	// (V=setup latency in ps).
	KindControllerInstall
	// KindChaosEvent: a chaos schedule event fired (A=link or node ID,
	// B=1 for a node target, V=1 for heal / 0 for fail).
	KindChaosEvent
	// KindAbort: NoteAbort was called (watchdog abandonment or harness
	// abort); the dump that follows explains why.
	KindAbort
)

var kindNames = map[Kind]string{
	KindFrameEnqueue:      "frame-enqueue",
	KindFrameDequeue:      "frame-dequeue",
	KindFrameDrop:         "frame-drop",
	KindLossDrop:          "loss-drop",
	KindLinkDown:          "link-down",
	KindLinkUp:            "link-up",
	KindRepairDetect:      "repair-detect",
	KindRepairInstall:     "repair-install",
	KindRepairComplete:    "repair-complete",
	KindUnicastFallback:   "unicast-fallback",
	KindAbandon:           "abandon",
	KindControllerInstall: "controller-install",
	KindChaosEvent:        "chaos-event",
	KindAbort:             "abort",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one structured trace record. Operands A, B, V are
// kind-specific (see the Kind constants); Seq is the recorder-assigned
// global sequence number, so a dump shows how many events were discarded
// between retained ones.
type Event struct {
	At   sim.Time
	Seq  uint64
	Kind Kind
	A    int64
	B    int64
	V    int64
}

// String renders the event for dumps.
func (e Event) String() string {
	return fmt.Sprintf("#%d t=%v %s a=%d b=%d v=%d", e.Seq, e.At.Duration(), e.Kind, e.A, e.B, e.V)
}

// Recorder is the bounded flight recorder: a ring buffer of the last N
// events. Recording overwrites the oldest entry in place — no
// allocation after construction — and takes a mutex, so concurrent
// simulation workers can share one recorder under -race.
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever recorded; buf holds the last min(total, cap)
	// frameEvents is atomic (not under mu) so hot paths can check the
	// gate lock-free before building frame-event arguments.
	frameEvents atomic.Bool
}

// NewRecorder returns a recorder keeping the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// SetFrameEvents enables per-frame enqueue/dequeue tracing. Off by
// default: frame events outnumber every other kind by orders of
// magnitude and would evict the sparse link/repair events the dump is
// for.
func (r *Recorder) SetFrameEvents(on bool) {
	if r == nil {
		return
	}
	r.frameEvents.Store(on)
}

// FrameEvents reports whether per-frame tracing is on. Hook points check
// it before building frame-event arguments.
func (r *Recorder) FrameEvents() bool {
	return r != nil && r.frameEvents.Load()
}

// Record appends one event, evicting the oldest once the ring is full.
func (r *Recorder) Record(at sim.Time, k Kind, a, b, v int64) {
	if r == nil {
		return
	}
	if (k == KindFrameEnqueue || k == KindFrameDequeue) && !r.frameEvents.Load() {
		return
	}
	r.mu.Lock()
	e := Event{At: at, Seq: r.total, Kind: k, A: a, B: b, V: v}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = e
	}
	r.total++
	r.mu.Unlock()
}

// Total returns how many events were ever recorded (retained or evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Len returns how many events the ring currently retains.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dump returns the retained events oldest-first.
func (r *Recorder) Dump() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		copy(out, r.buf)
		return out
	}
	head := int(r.total % uint64(cap(r.buf)))
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

// WriteTo renders the dump, oldest-first, one event per line, with a
// header stating how much of the history the ring retained.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	events := r.Dump()
	var written int64
	n, err := fmt.Fprintf(w, "flight recorder: %d of %d events retained\n", len(events), r.Total())
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, e := range events {
		n, err := fmt.Fprintf(w, "%s\n", e)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
