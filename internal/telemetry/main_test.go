package telemetry_test

import (
	"testing"

	"peel/internal/invariant/invtest"
)

// TestMain enables invariant checking for every test in both the internal
// and external telemetry test packages — the chaos integration test runs
// full simulations, and any frame-conservation or quiescence violation
// they trip fails the binary.
func TestMain(m *testing.M) {
	invtest.Main(m)
}
