package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"peel/internal/sim"
)

func TestMeanAndPercentiles(t *testing.T) {
	var s Samples
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Mean(); got != 50.5 {
		t.Fatalf("mean=%v", got)
	}
	if got := s.P99(); got != 99 {
		t.Fatalf("p99=%v", got)
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("p50=%v", got)
	}
	if got := s.Max(); got != 100 {
		t.Fatalf("max=%v", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("min=%v", got)
	}
	if s.N() != 100 {
		t.Fatalf("n=%d", s.N())
	}
}

func TestEmptySamples(t *testing.T) {
	var s Samples
	for _, v := range []float64{s.Mean(), s.P99(), s.Min(), s.StdDev()} {
		if !math.IsNaN(v) {
			t.Fatalf("empty sample stat = %v, want NaN", v)
		}
	}
}

func TestAddTime(t *testing.T) {
	var s Samples
	s.AddTime(250 * sim.Millisecond)
	if got := s.Mean(); got != 0.25 {
		t.Fatalf("mean=%v", got)
	}
}

func TestAddAfterPercentileKeepsCorrectness(t *testing.T) {
	var s Samples
	s.Add(3)
	s.Add(1)
	_ = s.P99()
	s.Add(2)
	if got := s.Percentile(50); got != 2 {
		t.Fatalf("p50 after interleaved add = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	var s Samples
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.StdDev(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("stddev=%v want 2", got)
	}
}

func TestSummaryString(t *testing.T) {
	var s Samples
	s.Add(1)
	sum := s.Summarize()
	if sum.N != 1 || sum.Mean != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if !strings.Contains(sum.String(), "n=1") {
		t.Fatalf("summary string %q", sum.String())
	}
}

func TestTableRendering(t *testing.T) {
	out := Table("msgMB", []float64{2, 4}, []Series{
		{Label: "ring", Y: []float64{0.1, 0.2}},
		{Label: "peel", Y: []float64{0.05}},
	})
	if !strings.Contains(out, "ring") || !strings.Contains(out, "peel") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for short series:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("unexpected row count:\n%s", out)
	}
}

// Property: percentiles are monotone in p and bracketed by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []float64, aRaw, bRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var s Samples
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return pa <= pb && pa >= s.Min() && pb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
