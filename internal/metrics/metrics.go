// Package metrics used to hold the statistics the paper reports: CCT
// samples with mean and tail percentiles, and figure series/tables.
//
// Deprecated: the summary helpers were folded into internal/telemetry so
// the repository has a single metrics API alongside the observability
// sink (counters, histograms, run reports). This package re-exports them
// as aliases for compatibility; new code should import
// peel/internal/telemetry directly.
package metrics

import (
	"peel/internal/telemetry"
)

// Samples accumulates CCT observations.
//
// Deprecated: use telemetry.Samples.
type Samples = telemetry.Samples

// Summary is a reporting-ready digest of a sample set.
//
// Deprecated: use telemetry.Summary.
type Summary = telemetry.Summary

// Series is one curve of a figure: X values with per-scheme Y values.
//
// Deprecated: use telemetry.Series.
type Series = telemetry.Series

// Table renders aligned rows for a set of series sharing X.
//
// Deprecated: use telemetry.Table.
func Table(xLabel string, xs []float64, series []Series) string {
	return telemetry.Table(xLabel, xs, series)
}
