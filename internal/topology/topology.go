// Package topology models datacenter Clos fabrics: k-ary fat-trees and
// two-tier leaf–spine networks, with support for link and switch failures.
//
// The package is the substrate for every other layer of the PEEL
// reproduction: multicast tree construction (internal/steiner), prefix
// aggregation (internal/prefix), and the discrete-event network simulator
// (internal/netsim) all operate on the Graph type defined here.
//
// Graphs are immutable in shape after construction; failures toggle a flag
// on links (or all links of a switch) without removing them, so a failed
// fabric retains the node/port numbering of its symmetric ancestor. This
// mirrors real deployments, where a drained link keeps its ports.
package topology

import (
	"fmt"
	"math/rand"
)

// NodeID identifies a node (host or switch) within one Graph.
type NodeID int32

// None is the sentinel for "no node".
const None NodeID = -1

// Kind classifies a node by its tier in the fabric.
type Kind uint8

// Node tiers. Leaf–spine fabrics use Leaf/Spine; fat-trees use
// ToR/Agg/Core. Hosts are common to both.
const (
	Host  Kind = iota
	ToR        // fat-tree edge (top-of-rack) switch
	Agg        // fat-tree aggregation switch
	Core       // fat-tree core switch
	Leaf       // leaf–spine leaf switch
	Spine      // leaf–spine spine switch
)

// String returns the conventional short name of the tier.
func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case ToR:
		return "tor"
	case Agg:
		return "agg"
	case Core:
		return "core"
	case Leaf:
		return "leaf"
	case Spine:
		return "spine"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsSwitch reports whether the kind is any switch tier.
func (k Kind) IsSwitch() bool { return k != Host }

// Node is one device in the fabric.
type Node struct {
	ID   NodeID
	Kind Kind
	// Pod is the pod number for fat-tree ToR/Agg/Host nodes, or -1 for
	// nodes outside any pod (cores, leaf–spine nodes).
	Pod int
	// Index is the node's position within its (pod, tier) group: the
	// ToR number within the pod, the host number under its ToR times
	// hosts-per-ToR, etc. It is the identifier PEEL's prefix scheme
	// aggregates over.
	Index int
	// Name is a stable human-readable label such as "pod1/tor3".
	Name string
}

// LinkID identifies a link within one Graph.
type LinkID int32

// Link is an undirected point-to-point cable between two nodes. Directed
// capacity is modelled by the simulator; construction and failure state
// live here.
type Link struct {
	ID     LinkID
	A, B   NodeID
	Failed bool
}

// Other returns the endpoint of l that is not n.
func (l Link) Other(n NodeID) NodeID {
	if l.A == n {
		return l.B
	}
	return l.A
}

// HalfEdge is one direction of a link as seen from a node's adjacency list.
type HalfEdge struct {
	Peer NodeID
	Link LinkID
}

// Graph is a Clos fabric: nodes, links, and adjacency.
type Graph struct {
	nodes []Node
	links []Link
	adj   [][]HalfEdge

	// K is the fat-tree arity, or 0 for non-fat-tree graphs.
	K int
	// HostsPerToR / HostsPerLeaf is the number of hosts below each edge
	// switch; 0 if the graph was built by hand.
	HostsPerEdge int

	failedLinks int
	observers   []observerReg
	nextHandle  ObserverHandle
}

// FailureObserver is notified on every link failure-state transition:
// failed=true when the link goes down, false when it is restored. Observers
// run synchronously inside FailLink/RestoreLink (and everything built on
// them: FailNode, RestoreAll, FailRandomFraction), so runtime consumers —
// the network simulator, the chaos injector's accounting — see transitions
// in exact order. Observers must not mutate the graph's failure state.
type FailureObserver func(id LinkID, failed bool)

// ObserverHandle identifies one registered failure observer for
// Unsubscribe. The zero value is never issued, so it can mark "no
// registration" in caller state.
type ObserverHandle int

// observerReg pairs an observer with its handle.
type observerReg struct {
	h  ObserverHandle
	fn FailureObserver
}

// OnFailureChange registers an observer and returns a handle for
// Unsubscribe. Registration order is notification order. Clone does not
// carry observers over: a cloned graph is a fresh scenario with no
// attached runtime. Long-running consumers (the control-plane service's
// cache invalidator above all) must Unsubscribe on teardown, or the graph
// pins them for its lifetime.
func (g *Graph) OnFailureChange(fn FailureObserver) ObserverHandle {
	g.nextHandle++
	g.observers = append(g.observers, observerReg{h: g.nextHandle, fn: fn})
	return g.nextHandle
}

// Unsubscribe removes the observer registered under h, reporting whether
// it was still registered. Unsubscribing twice (or a zero handle) is a
// no-op returning false. Must not be called from inside an observer.
func (g *Graph) Unsubscribe(h ObserverHandle) bool {
	for i, r := range g.observers {
		if r.h == h {
			g.observers = append(g.observers[:i], g.observers[i+1:]...)
			return true
		}
	}
	return false
}

// NumObservers returns how many failure observers are registered; leak
// regression tests assert it returns to baseline after teardown.
func (g *Graph) NumObservers() int { return len(g.observers) }

// notifyFailure fans a transition out to the registered observers.
func (g *Graph) notifyFailure(id LinkID, failed bool) {
	for _, r := range g.observers {
		r.fn(id, failed)
	}
}

// NewGraph returns an empty graph; use AddNode/AddLink to build custom
// fabrics (tests and the exact Steiner solver do this).
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a node and returns its ID. The Name may be empty.
func (g *Graph) AddNode(kind Kind, pod, index int, name string) NodeID {
	id := NodeID(len(g.nodes))
	if name == "" {
		name = fmt.Sprintf("%s%d", kind, id)
	}
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Pod: pod, Index: index, Name: name})
	g.adj = append(g.adj, nil)
	return id
}

// AddLink connects a and b and returns the link's ID. Self-loops and
// out-of-range endpoints panic: they indicate a construction bug, not a
// runtime condition.
func (g *Graph) AddLink(a, b NodeID) LinkID {
	if a == b {
		panic("topology: self-loop")
	}
	if int(a) >= len(g.nodes) || int(b) >= len(g.nodes) || a < 0 || b < 0 {
		panic("topology: link endpoint out of range")
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, A: a, B: b})
	g.adj[a] = append(g.adj[a], HalfEdge{Peer: b, Link: id})
	g.adj[b] = append(g.adj[b], HalfEdge{Peer: a, Link: id})
	return id
}

// NumNodes returns the total node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the total link count, including failed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// NumFailedLinks returns how many links are currently failed.
func (g *Graph) NumFailedLinks() int { return g.failedLinks }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Adj returns n's adjacency list including failed links. Callers must not
// modify the returned slice.
func (g *Graph) Adj(n NodeID) []HalfEdge { return g.adj[n] }

// Neighbors appends to dst the peers of n reachable over non-failed links
// and returns the extended slice. Passing a reused dst avoids allocation
// in hot paths (BFS, tree construction).
func (g *Graph) Neighbors(n NodeID, dst []NodeID) []NodeID {
	for _, he := range g.adj[n] {
		if !g.links[he.Link].Failed {
			dst = append(dst, he.Peer)
		}
	}
	return dst
}

// LinkBetween returns the first non-failed link between a and b, or -1.
func (g *Graph) LinkBetween(a, b NodeID) LinkID {
	for _, he := range g.adj[a] {
		if he.Peer == b && !g.links[he.Link].Failed {
			return he.Link
		}
	}
	return -1
}

// FailLink marks a link failed. Failing an already-failed link is a no-op
// (observers are only notified on actual transitions).
func (g *Graph) FailLink(id LinkID) {
	if !g.links[id].Failed {
		g.links[id].Failed = true
		g.failedLinks++
		g.notifyFailure(id, true)
	}
}

// RestoreLink clears a link's failed flag. Restoring a live link is a no-op.
func (g *Graph) RestoreLink(id LinkID) {
	if g.links[id].Failed {
		g.links[id].Failed = false
		g.failedLinks--
		g.notifyFailure(id, false)
	}
}

// FailNode fails every link incident to n (a switch failure). Links already
// failed stay failed and produce no duplicate notification.
func (g *Graph) FailNode(n NodeID) {
	for _, he := range g.adj[n] {
		g.FailLink(he.Link)
	}
}

// RestoreNode restores every link incident to n (a switch coming back).
// Note this also revives incident links that were failed independently of
// the node: link-level failure state is a single flag, as in FailNode.
func (g *Graph) RestoreNode(n NodeID) {
	for _, he := range g.adj[n] {
		g.RestoreLink(he.Link)
	}
}

// RestoreAll clears every failure, notifying observers per restored link.
func (g *Graph) RestoreAll() {
	for i := range g.links {
		g.RestoreLink(LinkID(i))
	}
}

// LinkFilter selects links eligible for random failure injection.
type LinkFilter func(g *Graph, l Link) bool

// SwitchLinks matches links whose endpoints are both switches (the
// spine–leaf / core–agg / agg–ToR tiers); host uplinks are excluded, as in
// the paper's failure experiments, which fail spine-to-leaf links only.
func SwitchLinks(g *Graph, l Link) bool {
	return g.nodes[l.A].Kind.IsSwitch() && g.nodes[l.B].Kind.IsSwitch()
}

// TierLinks returns a filter matching links between the two given tiers.
func TierLinks(a, b Kind) LinkFilter {
	return func(g *Graph, l Link) bool {
		ka, kb := g.nodes[l.A].Kind, g.nodes[l.B].Kind
		return (ka == a && kb == b) || (ka == b && kb == a)
	}
}

// FailRandomFraction fails ⌈fraction × |eligible|⌉ uniformly chosen
// eligible links and returns their IDs. fraction outside [0,1] is clamped.
// The caller owns the *rand.Rand, so runs are reproducible.
func (g *Graph) FailRandomFraction(fraction float64, filter LinkFilter, rng *rand.Rand) []LinkID {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	var eligible []LinkID
	for _, l := range g.links {
		if !l.Failed && (filter == nil || filter(g, l)) {
			eligible = append(eligible, l.ID)
		}
	}
	n := int(fraction*float64(len(eligible)) + 0.9999999)
	if n > len(eligible) {
		n = len(eligible)
	}
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	failed := eligible[:n]
	for _, id := range failed {
		g.FailLink(id)
	}
	return failed
}

// Clone returns a deep copy sharing nothing with g, so failure scenarios
// can be explored without mutating a baseline fabric.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:        append([]Node(nil), g.nodes...),
		links:        append([]Link(nil), g.links...),
		adj:          make([][]HalfEdge, len(g.adj)),
		K:            g.K,
		HostsPerEdge: g.HostsPerEdge,
		failedLinks:  g.failedLinks,
	}
	for i, a := range g.adj {
		c.adj[i] = append([]HalfEdge(nil), a...)
	}
	return c
}

// Hosts returns the IDs of all host nodes in ID order.
func (g *Graph) Hosts() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// NodesOfKind returns all node IDs of the given tier in ID order.
func (g *Graph) NodesOfKind(k Kind) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == k {
			out = append(out, n.ID)
		}
	}
	return out
}

// EdgeSwitchOf returns the ToR/Leaf switch directly above a host, scanning
// only non-failed links (a host whose uplink failed is unreachable and
// reports None).
func (g *Graph) EdgeSwitchOf(host NodeID) NodeID {
	for _, he := range g.adj[host] {
		if g.links[he.Link].Failed {
			continue
		}
		if k := g.nodes[he.Peer].Kind; k == ToR || k == Leaf {
			return he.Peer
		}
	}
	return None
}

// HostsUnder returns the hosts attached to an edge switch (ToR or Leaf),
// including hosts behind failed links: membership is physical.
func (g *Graph) HostsUnder(sw NodeID) []NodeID {
	var out []NodeID
	for _, he := range g.adj[sw] {
		if g.nodes[he.Peer].Kind == Host {
			out = append(out, he.Peer)
		}
	}
	return out
}

// Validate checks structural invariants and returns the first violation.
// It is O(V+E) and intended for tests and post-construction checks.
func (g *Graph) Validate() error {
	if len(g.adj) != len(g.nodes) {
		return fmt.Errorf("topology: adjacency size %d != node count %d", len(g.adj), len(g.nodes))
	}
	degSum := 0
	for i, a := range g.adj {
		degSum += len(a)
		for _, he := range a {
			l := g.links[he.Link]
			if l.A != NodeID(i) && l.B != NodeID(i) {
				return fmt.Errorf("topology: node %d lists link %d it is not on", i, he.Link)
			}
			if l.Other(NodeID(i)) != he.Peer {
				return fmt.Errorf("topology: node %d adjacency peer mismatch on link %d", i, he.Link)
			}
		}
	}
	if degSum != 2*len(g.links) {
		return fmt.Errorf("topology: degree sum %d != 2×links %d", degSum, 2*len(g.links))
	}
	failed := 0
	for _, l := range g.links {
		if l.Failed {
			failed++
		}
	}
	if failed != g.failedLinks {
		return fmt.Errorf("topology: failed-link counter %d != actual %d", g.failedLinks, failed)
	}
	return nil
}
