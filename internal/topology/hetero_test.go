package topology_test

import (
	"fmt"
	"math/rand"
	"testing"

	"peel/internal/core"
	"peel/internal/invariant"
	"peel/internal/invariant/invtest"
	"peel/internal/routing"
	"peel/internal/steiner"
	"peel/internal/topology"
)

// randomHeteroSpec draws an irregular spec wider than the default: spine
// counts, pod counts, and all per-ToR ranges vary per instance.
func randomHeteroSpec(rng *rand.Rand) topology.HeteroSpec {
	spec := topology.HeteroSpec{
		Seed:          rng.Int63(),
		Spines:        2 + rng.Intn(6),
		Pods:          1 + rng.Intn(5),
		ToRsPerPod:    [2]int{1 + rng.Intn(2), 1 + rng.Intn(4)},
		HostsPerToR:   [2]int{1 + rng.Intn(3), 2 + rng.Intn(6)},
		UplinksPerToR: [2]int{1 + rng.Intn(2), 1 + rng.Intn(6)},
	}
	return spec
}

// shrinkSpec yields progressively smaller variants of a failing spec —
// fewer pods, tighter ranges — so a property failure is reported against
// the smallest reproduction the shrinker can find.
func shrinkSpec(spec topology.HeteroSpec) []topology.HeteroSpec {
	var out []topology.HeteroSpec
	if spec.Pods > 1 {
		s := spec
		s.Pods--
		out = append(out, s)
	}
	if spec.Spines > 2 {
		s := spec
		s.Spines--
		out = append(out, s)
	}
	shrinkRange := func(mut func(*topology.HeteroSpec) *[2]int) {
		s := spec
		r := mut(&s)
		if r[1] > r[0] {
			r[1]--
			out = append(out, s)
		}
	}
	shrinkRange(func(s *topology.HeteroSpec) *[2]int { return &s.ToRsPerPod })
	shrinkRange(func(s *topology.HeteroSpec) *[2]int { return &s.HostsPerToR })
	shrinkRange(func(s *topology.HeteroSpec) *[2]int { return &s.UplinksPerToR })
	return out
}

// checkHeteroInstance runs every generative property against one spec and
// returns the first failure.
func checkHeteroInstance(t *testing.T, spec topology.HeteroSpec) error {
	g, sh := topology.HeteroFatTree(spec)

	// Shape bookkeeping: host count and declared draws inside spec ranges.
	hosts := g.Hosts()
	if len(hosts) != sh.Hosts {
		return fmt.Errorf("graph has %d hosts, shape declares %d", len(hosts), sh.Hosts)
	}
	if len(sh.Spines) != spec.Spines {
		return fmt.Errorf("shape has %d spines, spec wants %d", len(sh.Spines), spec.Spines)
	}
	for _, tor := range sh.ToRs {
		deg := 0
		hostLinks := 0
		for _, he := range g.Adj(tor.Node) {
			switch g.Node(he.Peer).Kind {
			case topology.Spine:
				deg++
			case topology.Host:
				hostLinks++
			}
		}
		if deg != tor.Uplinks {
			return fmt.Errorf("tor %d: %d spine links, shape declares %d uplinks", tor.Node, deg, tor.Uplinks)
		}
		if hostLinks != tor.Hosts {
			return fmt.Errorf("tor %d: %d host links, shape declares %d hosts", tor.Node, hostLinks, tor.Hosts)
		}
		if tor.Uplinks < 1 || tor.Uplinks > spec.Spines {
			return fmt.Errorf("tor %d: uplinks %d outside [1,%d]", tor.Node, tor.Uplinks, spec.Spines)
		}
		if r := tor.Oversub(); r != float64(tor.Hosts)/float64(tor.Uplinks) {
			return fmt.Errorf("tor %d: oversub %v inconsistent with %d/%d", tor.Node, r, tor.Hosts, tor.Uplinks)
		}
	}

	// Connectivity: every host reachable from the first.
	if len(hosts) < 2 {
		return nil
	}
	d := routing.BorrowBFS(g, hosts[0])
	for _, h := range hosts[1:] {
		if !d.Reachable(h) {
			d.Release()
			return fmt.Errorf("host %d unreachable", h)
		}
	}
	d.Release()

	// Steiner construction holds the Theorem 2.5 budget on the irregular
	// graph: BuildTree (layer-peeling fallback) and DisjointTrees both run
	// under the invariant checkers.
	src, dests := hosts[0], hosts[1:]
	var ferr error
	s := invtest.Capture(t, func() {
		tree, err := core.BuildTree(g, src, dests)
		if err != nil {
			ferr = fmt.Errorf("BuildTree: %w", err)
			return
		}
		steiner.ReportTreeChecks(invariant.Active(), g, tree, dests)
		trees, _, err := steiner.DisjointTrees(g, src, dests, 2)
		if err != nil {
			ferr = fmt.Errorf("DisjointTrees: %w", err)
			return
		}
		for _, dt := range trees {
			steiner.ReportTreeChecks(invariant.Active(), g, dt, dests)
		}
	})
	if ferr != nil {
		return ferr
	}
	if n := s.TotalViolations(); n > 0 {
		return fmt.Errorf("%d invariant violations:\n%s", n, s.Report())
	}
	return nil
}

// TestHeteroGenerative checks 100 random irregular instances; a failing
// spec is shrunk to the smallest reproduction before reporting.
func TestHeteroGenerative(t *testing.T) {
	rng := rand.New(rand.NewSource(20250807))
	for i := 0; i < 100; i++ {
		spec := randomHeteroSpec(rng)
		err := checkHeteroInstance(t, spec)
		if err == nil {
			continue
		}
		// Greedy shrink: keep descending into smaller failing variants.
		small, serr := spec, err
		for shrunk := true; shrunk; {
			shrunk = false
			for _, cand := range shrinkSpec(small) {
				if cerr := checkHeteroInstance(t, cand); cerr != nil {
					small, serr, shrunk = cand, cerr, true
					break
				}
			}
		}
		t.Fatalf("instance %d failed: %v\noriginal spec: %+v\nshrunk spec: %+v\nshrunk failure: %v",
			i, err, spec, small, serr)
	}
}

func TestHeteroDeterministic(t *testing.T) {
	spec := topology.DefaultHeteroSpec(42)
	g1, sh1 := topology.HeteroFatTree(spec)
	g2, sh2 := topology.HeteroFatTree(spec)
	if g1.NumNodes() != g2.NumNodes() || g1.NumLinks() != g2.NumLinks() {
		t.Fatalf("same seed, different graphs: %d/%d nodes, %d/%d links",
			g1.NumNodes(), g2.NumNodes(), g1.NumLinks(), g2.NumLinks())
	}
	if sh1.Hosts != sh2.Hosts || len(sh1.ToRs) != len(sh2.ToRs) {
		t.Fatalf("same seed, different shapes: %+v vs %+v", sh1, sh2)
	}
	g3, _ := topology.HeteroFatTree(topology.DefaultHeteroSpec(43))
	if g3.NumNodes() == g1.NumNodes() && g3.NumLinks() == g1.NumLinks() {
		t.Log("adjacent seeds drew identical sizes (possible but worth a look)")
	}
	if g1.K != 0 {
		t.Fatalf("hetero graph K = %d, want 0 (no prefix planner)", g1.K)
	}
}

func TestHeteroSpecNormalization(t *testing.T) {
	// Swapped ranges and out-of-range uplinks normalize instead of
	// panicking, and the result still respects the spine clamp.
	spec := topology.HeteroSpec{
		Seed:          7,
		Spines:        3,
		Pods:          2,
		ToRsPerPod:    [2]int{3, 1},
		HostsPerToR:   [2]int{5, 2},
		UplinksPerToR: [2]int{9, 1},
	}
	_, sh := topology.HeteroFatTree(spec)
	for _, tor := range sh.ToRs {
		if tor.Uplinks > 3 {
			t.Fatalf("uplinks %d exceed spine count after clamp", tor.Uplinks)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-spine spec accepted")
		}
	}()
	topology.HeteroFatTree(topology.HeteroSpec{Spines: 0, Pods: 1})
}
