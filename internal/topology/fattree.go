package topology

import "fmt"

// FatTree builds a failure-free k-ary fat-tree (Al-Fares et al. layout):
//
//   - (k/2)² core switches,
//   - k pods, each with k/2 aggregation and k/2 ToR switches,
//   - k/2 hosts under each ToR, for k³/4 hosts total.
//
// Aggregation switch i of every pod connects to cores i·(k/2) … i·(k/2)+k/2−1,
// so each core reaches exactly one aggregation switch per pod — the property
// PEEL's programmable-core refinement relies on (§3.3).
//
// k must be even and ≥ 2.
func FatTree(k int) *Graph {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topology: fat-tree arity must be even and >= 2, got %d", k))
	}
	g := NewGraph()
	g.K = k
	g.HostsPerEdge = k / 2
	half := k / 2

	cores := make([]NodeID, half*half)
	for i := range cores {
		cores[i] = g.AddNode(Core, -1, i, fmt.Sprintf("core%d", i))
	}
	for p := 0; p < k; p++ {
		aggs := make([]NodeID, half)
		for i := 0; i < half; i++ {
			aggs[i] = g.AddNode(Agg, p, i, fmt.Sprintf("pod%d/agg%d", p, i))
			for j := 0; j < half; j++ {
				g.AddLink(aggs[i], cores[i*half+j])
			}
		}
		for t := 0; t < half; t++ {
			tor := g.AddNode(ToR, p, t, fmt.Sprintf("pod%d/tor%d", p, t))
			for i := 0; i < half; i++ {
				g.AddLink(aggs[i], tor)
			}
			for h := 0; h < half; h++ {
				host := g.AddNode(Host, p, t*half+h, fmt.Sprintf("pod%d/tor%d/host%d", p, t, h))
				g.AddLink(tor, host)
			}
		}
	}
	return g
}

// LeafSpine builds a failure-free two-tier leaf–spine fabric with the given
// spine and leaf counts and hostsPerLeaf hosts under each leaf. Every leaf
// connects to every spine (full bipartite core).
func LeafSpine(spines, leaves, hostsPerLeaf int) *Graph {
	if spines < 1 || leaves < 1 || hostsPerLeaf < 0 {
		panic("topology: leaf-spine dimensions must be positive")
	}
	g := NewGraph()
	g.HostsPerEdge = hostsPerLeaf
	sp := make([]NodeID, spines)
	for i := range sp {
		sp[i] = g.AddNode(Spine, -1, i, fmt.Sprintf("spine%d", i))
	}
	for l := 0; l < leaves; l++ {
		leaf := g.AddNode(Leaf, -1, l, fmt.Sprintf("leaf%d", l))
		for _, s := range sp {
			g.AddLink(leaf, s)
		}
		for h := 0; h < hostsPerLeaf; h++ {
			host := g.AddNode(Host, -1, l*hostsPerLeaf+h, fmt.Sprintf("leaf%d/host%d", l, h))
			g.AddLink(leaf, host)
		}
	}
	return g
}

// FatTreeShape describes the size of a k-ary fat-tree without building it;
// used by the switch-state analysis (Fig. 3, §3.2) where k=64..128 fabrics
// are reasoned about analytically.
type FatTreeShape struct {
	K          int
	Cores      int
	AggPerPod  int
	ToRPerPod  int
	Pods       int
	HostsPerTo int
	Hosts      int
	Switches   int
	Links      int
}

// Shape returns the closed-form dimensions of a k-ary fat-tree.
func Shape(k int) FatTreeShape {
	half := k / 2
	s := FatTreeShape{
		K:          k,
		Cores:      half * half,
		AggPerPod:  half,
		ToRPerPod:  half,
		Pods:       k,
		HostsPerTo: half,
		Hosts:      k * k * k / 4,
	}
	s.Switches = s.Cores + s.Pods*(s.AggPerPod+s.ToRPerPod)
	// core–agg + agg–tor + tor–host
	s.Links = s.Pods*s.AggPerPod*half + s.Pods*s.AggPerPod*s.ToRPerPod + s.Hosts
	return s
}

// PodOf returns the pod of a node, or -1 for cores and non-fat-tree nodes.
func (g *Graph) PodOf(n NodeID) int { return g.nodes[n].Pod }

// ToRIndexOf returns the ToR-within-pod index of a fat-tree host or ToR:
// the identifier PEEL's power-of-two prefixes aggregate (§3.2).
func (g *Graph) ToRIndexOf(n NodeID) int {
	nd := g.nodes[n]
	switch nd.Kind {
	case ToR, Leaf:
		return nd.Index
	case Host:
		if g.HostsPerEdge == 0 {
			return -1
		}
		return nd.Index / g.HostsPerEdge
	}
	return -1
}

// HostSlotOf returns a host's position under its ToR (0 … hostsPerEdge−1).
func (g *Graph) HostSlotOf(h NodeID) int {
	nd := g.nodes[h]
	if nd.Kind != Host || g.HostsPerEdge == 0 {
		return -1
	}
	return nd.Index % g.HostsPerEdge
}

// HostByCoord returns the host at (pod, tor, slot) in a fat-tree, or None.
// It relies on the deterministic construction order of FatTree.
func (g *Graph) HostByCoord(pod, tor, slot int) NodeID {
	if g.K == 0 {
		return None
	}
	half := g.K / 2
	if pod < 0 || pod >= g.K || tor < 0 || tor >= half || slot < 0 || slot >= half {
		return None
	}
	// Construction order: cores, then per pod: k/2 aggs, then per ToR:
	// the ToR followed by its k/2 hosts.
	cores := half * half
	perPod := half /*aggs*/ + half*(1+half)
	base := cores + pod*perPod + half /*skip aggs*/ + tor*(1+half) + 1 + slot
	return NodeID(base)
}

// Oversubscribe degrades a fat-tree to the given core oversubscription
// ratio by failing entire core switches: ratio 2 keeps half the cores
// (2:1 cross-pod oversubscription, common in production AI fabrics),
// ratio 4 keeps a quarter, and so on. Kept cores are chosen round-robin
// across aggregation groups so every aggregation switch retains uplinks.
// Returns the failed core IDs. Ratio 1 is a no-op.
func (g *Graph) Oversubscribe(ratio int) []NodeID {
	if g.K == 0 || ratio <= 1 {
		return nil
	}
	var failed []NodeID
	for i, c := range g.NodesOfKind(Core) {
		// Cores are grouped by aggregation index: agg i owns cores
		// i·(k/2)…i·(k/2)+k/2−1. Failing all but every ratio-th core in
		// each group preserves one live uplink set per agg.
		if (i%(g.K/2))%ratio != 0 {
			g.FailNode(c)
			failed = append(failed, c)
		}
	}
	return failed
}

// RailOptimized builds a rail-optimized GPU fabric (the topology family
// the paper's §2.1 defers to future work; cf. Alibaba HPN). servers
// machines each expose rails NICs — one per on-board GPU — and NIC r of
// every server connects to rail switch r (a Leaf). Rail switches
// interconnect through spines full-bipartite. Host (s,r) is addressable
// via HostByRail; a server's hosts form one NVLink domain.
//
// The rail property: a group selecting the same rail on every server is
// covered by a single rail switch — zero spine crossings.
func RailOptimized(rails, servers, spines int) *Graph {
	if rails < 1 || servers < 1 || spines < 1 {
		panic("topology: rail-optimized dimensions must be positive")
	}
	g := NewGraph()
	g.HostsPerEdge = servers
	sp := make([]NodeID, spines)
	for i := range sp {
		sp[i] = g.AddNode(Spine, -1, i, fmt.Sprintf("spine%d", i))
	}
	for r := 0; r < rails; r++ {
		rail := g.AddNode(Leaf, -1, r, fmt.Sprintf("rail%d", r))
		for _, s := range sp {
			g.AddLink(rail, s)
		}
		for s := 0; s < servers; s++ {
			h := g.AddNode(Host, -1, r*servers+s, fmt.Sprintf("srv%d/gpu%d", s, r))
			g.AddLink(rail, h)
		}
	}
	return g
}

// HostByRail returns the NIC of server srv on rail r in a RailOptimized
// fabric, or None. It relies on the deterministic construction order.
func (g *Graph) HostByRail(rail, srv, rails, servers, spines int) NodeID {
	if rail < 0 || rail >= rails || srv < 0 || srv >= servers {
		return None
	}
	base := spines + rail*(1+servers) + 1 + srv
	if base >= g.NumNodes() {
		return None
	}
	return NodeID(base)
}

// RailOf returns the rail (leaf) index of a rail-optimized host.
func (g *Graph) RailOf(h NodeID) int {
	if g.HostsPerEdge == 0 {
		return -1
	}
	return g.Node(h).Index / g.HostsPerEdge
}

// ServerOf returns the server index of a rail-optimized host.
func (g *Graph) ServerOf(h NodeID) int {
	if g.HostsPerEdge == 0 {
		return -1
	}
	return g.Node(h).Index % g.HostsPerEdge
}
