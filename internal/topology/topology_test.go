package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFatTreeShapeCounts(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16} {
		g := FatTree(k)
		if err := g.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		s := Shape(k)
		if got := len(g.Hosts()); got != s.Hosts {
			t.Errorf("k=%d: hosts=%d want %d", k, got, s.Hosts)
		}
		if got := len(g.NodesOfKind(Core)); got != s.Cores {
			t.Errorf("k=%d: cores=%d want %d", k, got, s.Cores)
		}
		if got := len(g.NodesOfKind(Agg)); got != s.Pods*s.AggPerPod {
			t.Errorf("k=%d: aggs=%d want %d", k, got, s.Pods*s.AggPerPod)
		}
		if got := len(g.NodesOfKind(ToR)); got != s.Pods*s.ToRPerPod {
			t.Errorf("k=%d: tors=%d want %d", k, got, s.Pods*s.ToRPerPod)
		}
		if got := g.NumLinks(); got != s.Links {
			t.Errorf("k=%d: links=%d want %d", k, got, s.Links)
		}
		if g.NumNodes() != s.Hosts+s.Switches {
			t.Errorf("k=%d: nodes=%d want %d", k, g.NumNodes(), s.Hosts+s.Switches)
		}
	}
}

func TestFatTree64KHosts(t *testing.T) {
	// The paper's headline fabric: 64-ary fat-tree has 65,536 hosts.
	if s := Shape(64); s.Hosts != 65536 {
		t.Fatalf("Shape(64).Hosts = %d, want 65536", s.Hosts)
	}
}

func TestFatTreeDegrees(t *testing.T) {
	k := 8
	g := FatTree(k)
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(NodeID(id))
		deg := len(g.Adj(n.ID))
		want := 0
		switch n.Kind {
		case Host:
			want = 1
		case ToR:
			want = k // k/2 up to aggs + k/2 down to hosts
		case Agg:
			want = k // k/2 up to cores + k/2 down to tors
		case Core:
			want = k // one agg per pod
		}
		if deg != want {
			t.Fatalf("%s: degree %d want %d", n.Name, deg, want)
		}
	}
}

func TestCoreReachesOneAggPerPod(t *testing.T) {
	g := FatTree(8)
	for _, c := range g.NodesOfKind(Core) {
		seen := map[int]int{}
		for _, he := range g.Adj(c) {
			p := g.Node(he.Peer)
			if p.Kind != Agg {
				t.Fatalf("core %d linked to non-agg %s", c, p.Name)
			}
			seen[p.Pod]++
		}
		for pod, n := range seen {
			if n != 1 {
				t.Fatalf("core %d reaches pod %d via %d aggs, want 1", c, pod, n)
			}
		}
		if len(seen) != g.K {
			t.Fatalf("core %d reaches %d pods, want %d", c, len(seen), g.K)
		}
	}
}

func TestLeafSpineStructure(t *testing.T) {
	// The paper's Fig. 7 fabric: 16 spines, 48 leaves, 2 hosts/leaf.
	g := LeafSpine(16, 48, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Hosts()); got != 96 {
		t.Fatalf("hosts=%d want 96", got)
	}
	if got := g.NumLinks(); got != 16*48+96 {
		t.Fatalf("links=%d want %d", got, 16*48+96)
	}
	for _, leaf := range g.NodesOfKind(Leaf) {
		spines := 0
		for _, he := range g.Adj(leaf) {
			if g.Node(he.Peer).Kind == Spine {
				spines++
			}
		}
		if spines != 16 {
			t.Fatalf("leaf %d sees %d spines, want 16", leaf, spines)
		}
	}
}

func TestHostByCoordRoundTrip(t *testing.T) {
	g := FatTree(8)
	for pod := 0; pod < 8; pod++ {
		for tor := 0; tor < 4; tor++ {
			for slot := 0; slot < 4; slot++ {
				h := g.HostByCoord(pod, tor, slot)
				if h == None {
					t.Fatalf("HostByCoord(%d,%d,%d) = None", pod, tor, slot)
				}
				n := g.Node(h)
				if n.Kind != Host {
					t.Fatalf("HostByCoord(%d,%d,%d) = %s (not a host)", pod, tor, slot, n.Name)
				}
				if n.Pod != pod || g.ToRIndexOf(h) != tor || g.HostSlotOf(h) != slot {
					t.Fatalf("coord mismatch for %s: pod=%d tor=%d slot=%d", n.Name, n.Pod, g.ToRIndexOf(h), g.HostSlotOf(h))
				}
				tor2 := g.EdgeSwitchOf(h)
				if g.Node(tor2).Index != tor || g.Node(tor2).Pod != pod {
					t.Fatalf("EdgeSwitchOf(%s) = %s", n.Name, g.Node(tor2).Name)
				}
			}
		}
	}
	if g.HostByCoord(8, 0, 0) != None || g.HostByCoord(0, 4, 0) != None || g.HostByCoord(0, 0, -1) != None {
		t.Fatal("out-of-range coords must return None")
	}
}

func TestFailRestore(t *testing.T) {
	g := FatTree(4)
	l := g.Link(0)
	if l.Failed {
		t.Fatal("fresh link failed")
	}
	g.FailLink(0)
	g.FailLink(0) // idempotent
	if g.NumFailedLinks() != 1 {
		t.Fatalf("failed=%d want 1", g.NumFailedLinks())
	}
	if !g.Link(0).Failed {
		t.Fatal("link not failed")
	}
	g.RestoreLink(0)
	g.RestoreLink(0)
	if g.NumFailedLinks() != 0 || g.Link(0).Failed {
		t.Fatal("restore failed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFailNodeFailsAllIncidentLinks(t *testing.T) {
	g := FatTree(4)
	core := g.NodesOfKind(Core)[0]
	g.FailNode(core)
	if got := g.NumFailedLinks(); got != len(g.Adj(core)) {
		t.Fatalf("failed=%d want %d", got, len(g.Adj(core)))
	}
	if n := g.Neighbors(core, nil); len(n) != 0 {
		t.Fatalf("failed switch still has %d live neighbors", len(n))
	}
}

func TestFailRandomFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := LeafSpine(16, 48, 2)
	spineLeaf := TierLinks(Spine, Leaf)
	eligible := 0
	for i := 0; i < g.NumLinks(); i++ {
		if spineLeaf(g, g.Link(LinkID(i))) {
			eligible++
		}
	}
	if eligible != 16*48 {
		t.Fatalf("eligible=%d want %d", eligible, 16*48)
	}
	failed := g.FailRandomFraction(0.10, spineLeaf, rng)
	want := 77 // ceil(0.10 × 768)
	if len(failed) != want {
		t.Fatalf("failed %d links, want %d", len(failed), want)
	}
	for _, id := range failed {
		l := g.Link(id)
		if !l.Failed || !spineLeaf(g, l) {
			t.Fatalf("link %d: failed=%v tier-ok=%v", id, l.Failed, spineLeaf(g, l))
		}
	}
	// No host uplink may ever be failed by the spine-leaf filter.
	for _, h := range g.Hosts() {
		if g.EdgeSwitchOf(h) == None {
			t.Fatalf("host %d lost its uplink", h)
		}
	}
}

func TestFailRandomFractionClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := LeafSpine(2, 2, 1)
	if got := g.FailRandomFraction(-0.5, nil, rng); len(got) != 0 {
		t.Fatalf("negative fraction failed %d links", len(got))
	}
	g.RestoreAll()
	if got := g.FailRandomFraction(5.0, nil, rng); len(got) != g.NumLinks() {
		t.Fatalf("fraction>1 failed %d links, want all %d", len(got), g.NumLinks())
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := FatTree(4)
	c := g.Clone()
	g.FailLink(3)
	if c.Link(3).Failed {
		t.Fatal("clone shares link state")
	}
	if c.NumFailedLinks() != 0 {
		t.Fatal("clone inherited failure counter change")
	}
	c.FailLink(5)
	if g.Link(5).Failed {
		t.Fatal("original shares clone state")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsSkipFailed(t *testing.T) {
	g := LeafSpine(4, 2, 1)
	leaf := g.NodesOfKind(Leaf)[0]
	before := len(g.Neighbors(leaf, nil))
	g.FailLink(g.Adj(leaf)[0].Link)
	after := len(g.Neighbors(leaf, nil))
	if after != before-1 {
		t.Fatalf("neighbors %d -> %d, want drop of 1", before, after)
	}
}

func TestHostsUnder(t *testing.T) {
	g := FatTree(4)
	for _, tor := range g.NodesOfKind(ToR) {
		hosts := g.HostsUnder(tor)
		if len(hosts) != 2 {
			t.Fatalf("tor %d has %d hosts, want 2", tor, len(hosts))
		}
		// Membership is physical: failing the link must not change it.
		g.FailLink(g.Adj(hosts[0])[0].Link)
		if got := g.HostsUnder(tor); len(got) != 2 {
			t.Fatalf("tor %d: HostsUnder after failure = %d, want 2", tor, len(got))
		}
		if g.EdgeSwitchOf(hosts[0]) != None {
			t.Fatal("EdgeSwitchOf must report None over a failed uplink")
		}
		g.RestoreAll()
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Host: "host", ToR: "tor", Agg: "agg", Core: "core", Leaf: "leaf", Spine: "spine"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String()=%q want %q", k, k, want)
		}
		if k.IsSwitch() == (k == Host) {
			t.Errorf("IsSwitch wrong for %s", want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestAddLinkPanics(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Host, -1, 0, "")
	for _, fn := range []func(){
		func() { g.AddLink(a, a) },
		func() { g.AddLink(a, NodeID(42)) },
		func() { g.AddLink(-1, a) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFatTreePanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, 1, 3, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("FatTree(%d) must panic", k)
				}
			}()
			FatTree(k)
		}()
	}
}

// Property: random fail/restore sequences keep the failure counter exact
// and Validate green.
func TestQuickFailureBookkeeping(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		g := LeafSpine(4, 6, 2)
		for _, op := range ops {
			id := LinkID(int(op) % g.NumLinks())
			if op%3 == 0 {
				g.RestoreLink(id)
			} else {
				g.FailLink(id)
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Shape's closed forms match the constructed graph for all small k.
func TestQuickShapeMatchesConstruction(t *testing.T) {
	f := func(raw uint8) bool {
		k := 2 + 2*(int(raw)%6) // 2..12 even
		g := FatTree(k)
		s := Shape(k)
		return g.NumLinks() == s.Links && g.NumNodes() == s.Hosts+s.Switches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestOversubscribe(t *testing.T) {
	g := FatTree(8)
	failed := g.Oversubscribe(2)
	if len(failed) != 8 { // half of 16 cores
		t.Fatalf("failed %d cores, want 8", len(failed))
	}
	// Every aggregation switch keeps at least one live core uplink.
	for _, agg := range g.NodesOfKind(Agg) {
		live := 0
		for _, he := range g.Adj(agg) {
			if !g.Link(he.Link).Failed && g.Node(he.Peer).Kind == Core {
				live++
			}
		}
		if live == 0 {
			t.Fatalf("agg %d lost all core uplinks", agg)
		}
		if live != 2 { // k/2=4 uplinks, ratio 2 keeps 2
			t.Fatalf("agg %d has %d live uplinks, want 2", agg, live)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ratio 1 and non-fat-trees are no-ops.
	g2 := FatTree(4)
	if got := g2.Oversubscribe(1); got != nil {
		t.Fatal("ratio 1 must be a no-op")
	}
	ls := LeafSpine(2, 2, 1)
	if got := ls.Oversubscribe(2); got != nil {
		t.Fatal("leaf-spine must be a no-op")
	}
}

func TestRailOptimizedStructure(t *testing.T) {
	const rails, servers, spines = 8, 16, 4
	g := RailOptimized(rails, servers, spines)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Hosts()); got != rails*servers {
		t.Fatalf("hosts=%d want %d", got, rails*servers)
	}
	if got := len(g.NodesOfKind(Leaf)); got != rails {
		t.Fatalf("rails=%d want %d", got, rails)
	}
	for r := 0; r < rails; r++ {
		for s := 0; s < servers; s++ {
			h := g.HostByRail(r, s, rails, servers, spines)
			if h == None {
				t.Fatalf("HostByRail(%d,%d)=None", r, s)
			}
			if g.RailOf(h) != r || g.ServerOf(h) != s {
				t.Fatalf("host (%d,%d) decodes to (%d,%d)", r, s, g.RailOf(h), g.ServerOf(h))
			}
			// The NIC's edge switch is its rail switch.
			if got := g.Node(g.EdgeSwitchOf(h)).Index; got != r {
				t.Fatalf("host (%d,%d) attached to rail %d", r, s, got)
			}
		}
	}
	if g.HostByRail(rails, 0, rails, servers, spines) != None {
		t.Fatal("out-of-range rail must return None")
	}
}
