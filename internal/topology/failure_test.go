package topology

import (
	"math/rand"
	"testing"
)

// transition records one observer notification.
type transition struct {
	id     LinkID
	failed bool
}

func TestFailureObserverSeesTransitionsOnly(t *testing.T) {
	g := LeafSpine(2, 2, 1)
	var seen []transition
	g.OnFailureChange(func(id LinkID, failed bool) {
		seen = append(seen, transition{id, failed})
	})

	g.FailLink(0)
	g.FailLink(0) // already failed: no notification
	g.RestoreLink(0)
	g.RestoreLink(0) // already live: no notification
	want := []transition{{0, true}, {0, false}}
	if len(seen) != len(want) {
		t.Fatalf("got %d notifications %v, want %v", len(seen), seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("notification %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestFailureObserverFiresPerLinkOnNodeAndRestoreAll(t *testing.T) {
	g := LeafSpine(2, 3, 1)
	spine := g.NodesOfKind(Spine)[0]
	degree := len(g.Adj(spine))

	fails, heals := 0, 0
	g.OnFailureChange(func(_ LinkID, failed bool) {
		if failed {
			fails++
		} else {
			heals++
		}
	})
	g.FailNode(spine)
	if fails != degree {
		t.Fatalf("FailNode notified %d failures, want %d (spine degree)", fails, degree)
	}
	g.RestoreAll()
	if heals != degree {
		t.Fatalf("RestoreAll notified %d heals, want %d", heals, degree)
	}
	if g.NumFailedLinks() != 0 {
		t.Fatalf("NumFailedLinks=%d after RestoreAll", g.NumFailedLinks())
	}
}

func TestCloneDropsObservers(t *testing.T) {
	g := LeafSpine(2, 2, 1)
	calls := 0
	g.OnFailureChange(func(LinkID, bool) { calls++ })
	c := g.Clone()
	c.FailLink(0)
	if calls != 0 {
		t.Fatalf("clone notified the original's observer %d times", calls)
	}
	g.FailLink(1)
	if calls != 1 {
		t.Fatalf("original observer got %d calls, want 1", calls)
	}
}

func TestFailNodeWithAlreadyFailedLinks(t *testing.T) {
	g := LeafSpine(2, 3, 1)
	spine := g.NodesOfKind(Spine)[0]
	degree := len(g.Adj(spine))

	// Pre-fail one of the spine's links, then fail the whole node: the
	// counter must not double-count the shared link.
	pre := g.Adj(spine)[0].Link
	g.FailLink(pre)
	if g.NumFailedLinks() != 1 {
		t.Fatalf("NumFailedLinks=%d after one FailLink", g.NumFailedLinks())
	}
	g.FailNode(spine)
	if g.NumFailedLinks() != degree {
		t.Fatalf("NumFailedLinks=%d after FailNode, want %d", g.NumFailedLinks(), degree)
	}
	for _, he := range g.Adj(spine) {
		if !g.Link(he.Link).Failed {
			t.Fatalf("link %d of failed node still live", he.Link)
		}
	}
}

func TestRestoreNodeRevivesIncidentLinks(t *testing.T) {
	g := LeafSpine(2, 3, 1)
	spine := g.NodesOfKind(Spine)[0]
	g.FailNode(spine)
	g.RestoreNode(spine)
	if g.NumFailedLinks() != 0 {
		t.Fatalf("NumFailedLinks=%d after RestoreNode, want 0", g.NumFailedLinks())
	}
}

func TestRestoreAllAfterFailNode(t *testing.T) {
	g := FatTree(4)
	agg := g.NodesOfKind(Agg)[1]
	g.FailNode(agg)
	if g.NumFailedLinks() == 0 {
		t.Fatal("FailNode failed nothing")
	}
	g.RestoreAll()
	if g.NumFailedLinks() != 0 {
		t.Fatalf("NumFailedLinks=%d after RestoreAll", g.NumFailedLinks())
	}
	for i := 0; i < g.NumLinks(); i++ {
		if g.Link(LinkID(i)).Failed {
			t.Fatalf("link %d still failed after RestoreAll", i)
		}
	}
}

func TestFailRandomFractionEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	// Fraction 0 fails nothing.
	g := LeafSpine(4, 4, 2)
	if ids := g.FailRandomFraction(0, SwitchLinks, rng); len(ids) != 0 {
		t.Fatalf("fraction 0 failed %d links", len(ids))
	}
	if g.NumFailedLinks() != 0 {
		t.Fatalf("NumFailedLinks=%d after fraction 0", g.NumFailedLinks())
	}

	// Fraction 1 fails every eligible link exactly once.
	eligible := 0
	for i := 0; i < g.NumLinks(); i++ {
		if SwitchLinks(g, g.Link(LinkID(i))) {
			eligible++
		}
	}
	ids := g.FailRandomFraction(1, SwitchLinks, rng)
	if len(ids) != eligible || g.NumFailedLinks() != eligible {
		t.Fatalf("fraction 1: failed %d (counter %d), want %d", len(ids), g.NumFailedLinks(), eligible)
	}

	// A filter matching nothing fails nothing (empty eligible set).
	g2 := LeafSpine(2, 2, 1)
	none := func(*Graph, Link) bool { return false }
	if ids := g2.FailRandomFraction(1, none, rng); len(ids) != 0 {
		t.Fatalf("empty filter failed %d links", len(ids))
	}

	// Fractions outside [0,1] clamp instead of panicking.
	g3 := LeafSpine(2, 2, 1)
	if ids := g3.FailRandomFraction(-0.5, nil, rng); len(ids) != 0 {
		t.Fatalf("negative fraction failed %d links", len(ids))
	}
	g3.RestoreAll()
	if ids := g3.FailRandomFraction(2.5, nil, rng); len(ids) != g3.NumLinks() {
		t.Fatalf("fraction >1 failed %d links, want all %d", len(ids), g3.NumLinks())
	}
}

func TestUnsubscribeStopsNotifications(t *testing.T) {
	g := LeafSpine(2, 2, 1)
	a, b := 0, 0
	ha := g.OnFailureChange(func(LinkID, bool) { a++ })
	hb := g.OnFailureChange(func(LinkID, bool) { b++ })

	g.FailLink(0)
	if a != 1 || b != 1 {
		t.Fatalf("before unsubscribe: a=%d b=%d, want 1 1", a, b)
	}
	if !g.Unsubscribe(ha) {
		t.Fatal("Unsubscribe(ha) reported not registered")
	}
	g.RestoreLink(0)
	if a != 1 || b != 2 {
		t.Fatalf("after unsubscribe: a=%d b=%d, want 1 2", a, b)
	}
	// Double unsubscribe and zero handles are no-ops.
	if g.Unsubscribe(ha) {
		t.Fatal("double Unsubscribe reported success")
	}
	if g.Unsubscribe(0) {
		t.Fatal("Unsubscribe(0) reported success")
	}
	if !g.Unsubscribe(hb) {
		t.Fatal("Unsubscribe(hb) reported not registered")
	}
	if g.NumObservers() != 0 {
		t.Fatalf("NumObservers=%d after full teardown, want 0", g.NumObservers())
	}
}

func TestObserverLeakRegression(t *testing.T) {
	// A long-running control plane registers an observer per attached
	// runtime and must be able to detach it: repeated subscribe/unsubscribe
	// cycles may not accumulate registrations (the leak this test pins).
	g := FatTree(4)
	base := g.NumObservers()
	for i := 0; i < 1000; i++ {
		h := g.OnFailureChange(func(LinkID, bool) {})
		g.FailLink(0)
		g.RestoreLink(0)
		if !g.Unsubscribe(h) {
			t.Fatalf("cycle %d: handle not registered", i)
		}
	}
	if got := g.NumObservers(); got != base {
		t.Fatalf("observer leak: %d registered after teardown, want %d", got, base)
	}
	// Handles stay unique across the churn: a fresh registration still
	// receives notifications.
	n := 0
	g.OnFailureChange(func(LinkID, bool) { n++ })
	g.FailLink(1)
	if n != 1 {
		t.Fatalf("fresh observer after churn got %d notifications, want 1", n)
	}
}
