package fabric

import (
	"testing"

	"peel/internal/invariant/invtest"
)

// TestMain enables invariant checking for every test in this package and
// fails the binary if any checker records a violation.
func TestMain(m *testing.M) { invtest.Main(m) }
