package fabric

import (
	"fmt"
	"math/rand"

	"peel/internal/sim"
	"peel/internal/topology"
)

// OCS couples a leaf–spine fabric to an optical circuit switch: every
// leaf–spine pair has a candidate circuit created up front as a real
// topology link, but only LivePerLeaf circuits per leaf are mapped at
// any moment — the rest sit failed ("unmapped") until an epoch installs
// them. Reconfiguration never creates or destroys links, it only toggles
// which candidates are live, so LinkIDs are stable across epochs and the
// whole failure-driven stack (invalidation, repair, netsim teardown)
// applies unchanged.
type OCS struct {
	G            *topology.Graph
	Spines       int
	Leaves       int
	HostsPerLeaf int
	LivePerLeaf  int

	circuit [][]topology.LinkID // [leaf][spine] candidate circuit
	live    [][]int             // current spine mapping per leaf, ascending
}

// NewOCS builds the candidate mesh and maps the initial circuits: leaf l
// starts with spines (l+i) mod Spines for i < livePerLeaf, the same
// round-robin stagger LeafSpine-class fabrics use. livePerLeaf must be
// in [1, spines].
func NewOCS(spines, leaves, hostsPerLeaf, livePerLeaf int) *OCS {
	if spines < 1 || leaves < 1 || hostsPerLeaf < 1 {
		panic(fmt.Sprintf("fabric: OCS needs >=1 spine/leaf/host, got %d/%d/%d", spines, leaves, hostsPerLeaf))
	}
	if livePerLeaf < 1 || livePerLeaf > spines {
		panic(fmt.Sprintf("fabric: livePerLeaf %d out of range [1,%d]", livePerLeaf, spines))
	}
	g := topology.NewGraph()
	g.HostsPerEdge = hostsPerLeaf
	sp := make([]topology.NodeID, spines)
	for i := range sp {
		sp[i] = g.AddNode(topology.Spine, -1, i, fmt.Sprintf("spine%d", i))
	}
	o := &OCS{G: g, Spines: spines, Leaves: leaves, HostsPerLeaf: hostsPerLeaf, LivePerLeaf: livePerLeaf}
	o.circuit = make([][]topology.LinkID, leaves)
	o.live = make([][]int, leaves)
	for l := 0; l < leaves; l++ {
		leaf := g.AddNode(topology.Leaf, -1, l, fmt.Sprintf("leaf%d", l))
		o.circuit[l] = make([]topology.LinkID, spines)
		for s := 0; s < spines; s++ {
			o.circuit[l][s] = g.AddLink(leaf, sp[s])
		}
		for h := 0; h < hostsPerLeaf; h++ {
			host := g.AddNode(topology.Host, -1, l*hostsPerLeaf+h, fmt.Sprintf("leaf%d/host%d", l, h))
			g.AddLink(leaf, host)
		}
		mapped := make(map[int]bool, livePerLeaf)
		for i := 0; i < livePerLeaf; i++ {
			mapped[(l+i)%spines] = true
		}
		for s := 0; s < spines; s++ {
			if mapped[s] {
				o.live[l] = append(o.live[l], s)
			} else {
				g.FailLink(o.circuit[l][s])
			}
		}
	}
	return o
}

// Circuit returns the candidate circuit link between a leaf and a spine.
func (o *OCS) Circuit(leaf, spine int) topology.LinkID { return o.circuit[leaf][spine] }

// Live returns the spines currently mapped for a leaf (ascending copy).
func (o *OCS) Live(leaf int) []int { return append([]int(nil), o.live[leaf]...) }

// Rotation generates an n-epoch schedule starting at `start` with one
// epoch every `period`: each epoch, every leaf retires `swap` of its
// mapped circuits and installs `swap` currently-unmapped ones (seeded
// draws), keeping LivePerLeaf constant. swap must be < LivePerLeaf so a
// leaf always keeps at least one circuit that is neither removed nor
// retraining — connectivity holds even inside dark windows. Rotation
// advances the OCS's own live-mapping record; generate the schedule
// before arming it, from the same OCS the graph came from.
func (o *OCS) Rotation(n, swap int, start, period, announce, dark sim.Time, seed int64) Schedule {
	if swap < 1 || swap >= o.LivePerLeaf {
		panic(fmt.Sprintf("fabric: rotation swap %d must be in [1,%d)", swap, o.LivePerLeaf))
	}
	if o.LivePerLeaf == o.Spines {
		panic("fabric: rotation needs unmapped spines to install (livePerLeaf == spines)")
	}
	if period <= dark {
		panic(fmt.Sprintf("fabric: rotation period %v must exceed dark window %v", period, dark))
	}
	rng := rand.New(rand.NewSource(seed))
	sched := Schedule{Announce: announce, Dark: dark}
	for e := 0; e < n; e++ {
		ep := Epoch{At: start + sim.Time(e)*period}
		for l := 0; l < o.Leaves; l++ {
			// Retire `swap` random mapped spines and install `swap`
			// random unmapped ones for this leaf.
			mapped := append([]int(nil), o.live[l]...)
			rng.Shuffle(len(mapped), func(i, j int) { mapped[i], mapped[j] = mapped[j], mapped[i] })
			retire := mapped[:swap]
			keep := mapped[swap:]
			inSet := make(map[int]bool, len(o.live[l]))
			for _, s := range o.live[l] {
				inSet[s] = true
			}
			var unmapped []int
			for s := 0; s < o.Spines; s++ {
				if !inSet[s] {
					unmapped = append(unmapped, s)
				}
			}
			rng.Shuffle(len(unmapped), func(i, j int) { unmapped[i], unmapped[j] = unmapped[j], unmapped[i] })
			install := unmapped[:swap]
			for _, s := range retire {
				ep.Removed = append(ep.Removed, o.circuit[l][s])
			}
			for _, s := range install {
				ep.Added = append(ep.Added, o.circuit[l][s])
			}
			next := append(keep, install...)
			sortInts(next)
			o.live[l] = next
		}
		sortLinks(ep.Removed)
		sortLinks(ep.Added)
		sched.Epochs = append(sched.Epochs, ep)
	}
	return sched
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
