package fabric

import (
	"testing"

	"peel/internal/invariant"
	"peel/internal/invariant/invtest"
	"peel/internal/routing"
	"peel/internal/sim"
	"peel/internal/topology"
)

// recorder is a fake Darkener capturing SetLinkDark calls in order.
type recorder struct {
	calls []struct {
		id   topology.LinkID
		dark bool
	}
}

func (r *recorder) SetLinkDark(id topology.LinkID, dark bool) {
	r.calls = append(r.calls, struct {
		id   topology.LinkID
		dark bool
	}{id, dark})
}

func TestOCSInitialMapping(t *testing.T) {
	o := NewOCS(4, 8, 4, 3)
	if got, want := o.G.NumFailedLinks(), 8*(4-3); got != want {
		t.Fatalf("unmapped circuits = %d, want %d", got, want)
	}
	for l := 0; l < o.Leaves; l++ {
		live := o.Live(l)
		if len(live) != o.LivePerLeaf {
			t.Fatalf("leaf %d: %d live circuits, want %d", l, len(live), o.LivePerLeaf)
		}
		for _, s := range live {
			if o.G.Link(o.Circuit(l, s)).Failed {
				t.Fatalf("leaf %d spine %d: mapped circuit is failed", l, s)
			}
		}
	}
	if o.G.HostsPerEdge != 4 {
		t.Fatalf("HostsPerEdge = %d, want 4", o.G.HostsPerEdge)
	}
	assertHostsConnected(t, o.G)
}

// assertHostsConnected BFSes from the first host and requires every other
// host reachable over live links.
func assertHostsConnected(t *testing.T, g *topology.Graph) {
	t.Helper()
	hosts := g.Hosts()
	d := routing.BorrowBFS(g, hosts[0])
	defer d.Release()
	for _, h := range hosts[1:] {
		if !d.Reachable(h) {
			t.Fatalf("host %d unreachable from host %d on live links", h, hosts[0])
		}
	}
}

func TestRotationPreservesLiveCountAndDisjointSets(t *testing.T) {
	o := NewOCS(4, 8, 4, 3)
	sched := o.Rotation(5, 1, sim.Millisecond, sim.Millisecond, 100*sim.Microsecond, 20*sim.Microsecond, 7)
	if len(sched.Epochs) != 5 {
		t.Fatalf("epochs = %d, want 5", len(sched.Epochs))
	}
	for i, e := range sched.Epochs {
		if len(e.Removed) != o.Leaves || len(e.Added) != o.Leaves {
			t.Fatalf("epoch %d: removed %d added %d, want %d each", i, len(e.Removed), len(e.Added), o.Leaves)
		}
		seen := map[topology.LinkID]bool{}
		for _, id := range e.Removed {
			seen[id] = true
		}
		for _, id := range e.Added {
			if seen[id] {
				t.Fatalf("epoch %d: circuit %d both removed and added", i, id)
			}
		}
	}
	for l := 0; l < o.Leaves; l++ {
		if got := len(o.Live(l)); got != o.LivePerLeaf {
			t.Fatalf("after rotation, leaf %d live = %d, want %d", l, got, o.LivePerLeaf)
		}
	}
	// Same seed on a fresh OCS reproduces the schedule exactly.
	o2 := NewOCS(4, 8, 4, 3)
	sched2 := o2.Rotation(5, 1, sim.Millisecond, sim.Millisecond, 100*sim.Microsecond, 20*sim.Microsecond, 7)
	for i := range sched.Epochs {
		if len(sched.Epochs[i].Removed) != len(sched2.Epochs[i].Removed) {
			t.Fatalf("epoch %d not reproducible", i)
		}
		for j := range sched.Epochs[i].Removed {
			if sched.Epochs[i].Removed[j] != sched2.Epochs[i].Removed[j] ||
				sched.Epochs[i].Added[j] != sched2.Epochs[i].Added[j] {
				t.Fatalf("epoch %d draw %d differs across identically-seeded rotations", i, j)
			}
		}
	}
}

func TestArmAnnouncedLifecycle(t *testing.T) {
	o := NewOCS(4, 8, 4, 3)
	sched := o.Rotation(3, 1, sim.Millisecond, sim.Millisecond, 200*sim.Microsecond, 50*sim.Microsecond, 1)
	fab := New(o.G, sched)
	eng := &sim.Engine{}
	rec := &recorder{}

	var events []string
	hooks := Hooks{
		Announce: func(ch EpochChange) {
			events = append(events, "announce")
			// Announced before the boundary: removed circuits still live.
			for _, id := range ch.Removed {
				if o.G.Link(id).Failed {
					t.Errorf("epoch %d: removed circuit %d already failed at announce", ch.Index, id)
				}
			}
		},
		Committed: func(ch EpochChange) {
			events = append(events, "commit")
			for _, id := range ch.Removed {
				if !o.G.Link(id).Failed {
					t.Errorf("epoch %d: removed circuit %d not failed at commit", ch.Index, id)
				}
			}
			// Announced fabrics restore added circuits at commit (dark).
			for _, id := range ch.Added {
				if o.G.Link(id).Failed {
					t.Errorf("epoch %d: added circuit %d still failed at commit", ch.Index, id)
				}
				if !fab.InDark(id) {
					t.Errorf("epoch %d: added circuit %d not dark at commit", ch.Index, id)
				}
			}
			if !fab.DarkOpen() {
				t.Errorf("epoch %d: dark window not open at commit", ch.Index)
			}
			// Connectivity holds even inside the dark window: swap <
			// LivePerLeaf leaves every leaf a circuit that is neither
			// removed nor retraining.
			assertHostsConnected(t, o.G)
		},
		Completed: func(ch EpochChange) {
			events = append(events, "complete")
			for _, id := range ch.Added {
				if fab.InDark(id) {
					t.Errorf("epoch %d: added circuit %d still dark at complete", ch.Index, id)
				}
			}
		},
	}
	if err := fab.Arm(eng, rec, hooks); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"announce", "commit", "complete", "announce", "commit", "complete", "announce", "commit", "complete"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event[%d] = %s, want %s (%v)", i, events[i], want[i], events)
		}
	}
	if fab.EpochsCommitted() != 3 {
		t.Fatalf("committed = %d, want 3", fab.EpochsCommitted())
	}
	if fab.DarkOpen() {
		t.Fatal("dark window left open after drain")
	}
	// The mapping moved but its cardinality is invariant: the same number
	// of circuits is unmapped as at construction.
	if got, want := o.G.NumFailedLinks(), 8*(4-3); got != want {
		t.Fatalf("unmapped circuits after 3 epochs = %d, want %d", got, want)
	}
	// Darkener saw one dark=true and one dark=false per added circuit.
	on, off := 0, 0
	for _, c := range rec.calls {
		if c.dark {
			on++
		} else {
			off++
		}
	}
	if on != 3*8 || off != 3*8 {
		t.Fatalf("darkener calls on=%d off=%d, want 24 each", on, off)
	}
}

func TestUnannouncedDefersInstallToWindowClose(t *testing.T) {
	o := NewOCS(4, 4, 2, 3)
	sched := o.Rotation(1, 1, sim.Millisecond, sim.Millisecond, 200*sim.Microsecond, 50*sim.Microsecond, 3)
	fab := New(o.G, sched)
	fab.Unannounced = true
	eng := &sim.Engine{}
	rec := &recorder{}
	if err := fab.Arm(eng, rec, Hooks{}); err != nil {
		t.Fatal(err)
	}
	e := sched.Epochs[0]
	// Probe between commit and complete: added circuits must still be
	// failed (an unannounced fabric has no deferral license — retraining
	// circuits are just down).
	eng.At(e.At+25*sim.Microsecond, func() {
		for _, id := range e.Added {
			if !o.G.Link(id).Failed {
				t.Errorf("unannounced: added circuit %d live inside the retraining window", id)
			}
		}
	})
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, id := range e.Added {
		if o.G.Link(id).Failed {
			t.Errorf("unannounced: added circuit %d not restored after the window", id)
		}
	}
	if len(rec.calls) != 0 {
		t.Fatalf("unannounced fabric called the darkener: %v", rec.calls)
	}
}

func TestArmValidation(t *testing.T) {
	o := NewOCS(4, 4, 2, 3)
	eng := &sim.Engine{}
	eng.At(sim.Millisecond, func() {})
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}

	past := New(o.G, Schedule{Epochs: []Epoch{{At: sim.Microsecond}}})
	if err := past.Arm(eng, nil, Hooks{}); err == nil {
		t.Fatal("epoch in the past accepted")
	}

	overlap := New(o.G, Schedule{Dark: 100 * sim.Microsecond, Epochs: []Epoch{
		{At: 2 * sim.Millisecond},
		{At: 2*sim.Millisecond + 50*sim.Microsecond},
	}})
	if err := overlap.Arm(eng, nil, Hooks{}); err == nil {
		t.Fatal("epoch overlapping the previous dark window accepted")
	}

	unknown := New(o.G, Schedule{Epochs: []Epoch{
		{At: 2 * sim.Millisecond, Removed: []topology.LinkID{topology.LinkID(o.G.NumLinks())}},
	}})
	if err := unknown.Arm(eng, nil, Hooks{}); err == nil {
		t.Fatal("unknown link ID accepted")
	}
}

func TestRotationRejectsBadSwap(t *testing.T) {
	o := NewOCS(4, 4, 2, 3)
	for _, swap := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("swap=%d accepted", swap)
				}
			}()
			o.Rotation(1, swap, sim.Millisecond, sim.Millisecond, 0, 0, 1)
		}()
	}
	full := NewOCS(4, 4, 2, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rotation with livePerLeaf == spines accepted")
			}
		}()
		full.Rotation(1, 1, sim.Millisecond, sim.Millisecond, 0, 0, 1)
	}()
}

// TestEpochConsistentMutation is the checker's self-test: a walk serving
// a tree over a removed circuit must record a violation, and a clean walk
// must record passes only.
func TestEpochConsistentMutation(t *testing.T) {
	removed := []topology.LinkID{7}
	dirty := invtest.Capture(t, func() {
		CheckEpochConsistent(invariant.Active(), removed, func(visit func(string, []topology.LinkID)) {
			visit("clean", []topology.LinkID{1, 2, 3})
			visit("stale", []topology.LinkID{5, 7})
		})
	})
	if dirty.Violations(EpochConsistent) != 1 {
		t.Fatalf("violations = %d, want 1", dirty.Violations(EpochConsistent))
	}
	clean := invtest.Capture(t, func() {
		CheckEpochConsistent(invariant.Active(), removed, func(visit func(string, []topology.LinkID)) {
			visit("clean", []topology.LinkID{1, 2, 3})
		})
	})
	if clean.Violations(EpochConsistent) != 0 {
		t.Fatalf("clean walk recorded violations")
	}
}
