// Package fabric models scheduled optical-fabric reconfiguration: a
// Schedule of epochs, each remapping a set of OCS inter-pod circuits at
// a deterministic sim-time with a configurable retraining delay during
// which the incoming circuits are dark.
//
// Reconfiguration differs from chaos failures in one load-bearing way:
// it is *announced*. The fabric publishes an EpochChange ahead of the
// switch-over, giving the control plane time to re-peel every tree that
// crosses a to-be-removed circuit before the boundary (planned
// invalidation, see internal/service.PlanEpoch), and giving the data
// plane license to *defer* frames offered to a dark circuit instead of
// dropping them (netsim.SetLinkDark). MORS (arXiv 2401.14173) is the
// anchor: OCS fabrics that physically rewire multicast paths on a
// schedule, where the difference between planned and unplanned
// invalidation is the difference between a seamless cut-over and a
// timeout-driven repair storm.
//
// Circuits are ordinary topology links created up front: an epoch
// "removes" a circuit with Graph.FailLink and "installs" one with
// Graph.RestoreLink, so LinkIDs are stable across any number of
// reconfigurations and every failure-driven subsystem (netsim channel
// teardown, service invalidation, collective repair) composes with the
// schedule unchanged.
package fabric

import (
	"fmt"
	"sort"

	"peel/internal/invariant"
	"peel/internal/sim"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

// EpochConsistent is the invariant name for the post-switch-over walk:
// no cached/served tree may use a circuit the committed epoch removed.
const EpochConsistent = "fabric.epoch-consistent"

func init() {
	invariant.Register(invariant.Checker{
		Name:   EpochConsistent,
		Anchor: "scheduled reconfiguration (MORS, arXiv 2401.14173)",
		Desc:   "after an epoch switch-over, no cached/served tree uses a removed circuit",
	})
}

// Epoch is one scheduled reconfiguration: at time At the Removed
// circuits are unmapped (failed) and the Added circuits are mapped
// (restored). Added circuits stay dark for the schedule's Dark duration
// while the optics retrain.
type Epoch struct {
	At      sim.Time
	Removed []topology.LinkID
	Added   []topology.LinkID
}

// Schedule is a fabric's reconfiguration plan. Announce is how far ahead
// of each epoch's At the EpochChange is published (0 = unannounced);
// Dark is the retraining delay during which installed circuits carry no
// frames.
type Schedule struct {
	Announce sim.Time
	Dark     sim.Time
	Epochs   []Epoch
}

// EpochChange is the published description of one epoch, handed to every
// hook so observers can pre-peel, defer, or account without consulting
// the schedule.
type EpochChange struct {
	Index   int
	At      sim.Time
	Dark    sim.Time
	Removed []topology.LinkID
	Added   []topology.LinkID
}

// Darkener is the data-plane hook for retraining windows: mark both
// directions of a link dark (defer frames) or clear it (drain deferred
// frames). netsim.Network implements it.
type Darkener interface {
	SetLinkDark(id topology.LinkID, dark bool)
}

// Hooks are the control-plane observers of a fabric. Announce fires
// Schedule.Announce before each epoch (skipped when Announce is 0 or the
// epoch is too close to arming time); Committed fires at the switch-over
// after the graph mutations; Completed fires once the epoch's dark
// window closes. Any hook may be nil.
type Hooks struct {
	Announce  func(EpochChange)
	Committed func(EpochChange)
	Completed func(EpochChange)
}

// Fabric owns a graph and a reconfiguration schedule.
type Fabric struct {
	G     *topology.Graph
	Sched Schedule

	// Unannounced switches the fabric to failure-equivalent semantics
	// for A/B studies: no announce hooks, no darkener — removed circuits
	// fail at At, and added circuits only come up at At+Dark (the
	// retraining delay is physical either way; an unannounced fabric
	// simply leaves everyone to discover it as packet loss).
	Unannounced bool

	dark      map[topology.LinkID]bool
	darkOpen  int
	announced int
	committed int
	completed int
}

// New wraps a graph and schedule. Arm does the validation.
func New(g *topology.Graph, sched Schedule) *Fabric {
	return &Fabric{G: g, Sched: sched, dark: make(map[topology.LinkID]bool)}
}

// EpochsCommitted reports how many epochs have switched over so far.
func (f *Fabric) EpochsCommitted() int { return f.committed }

// DarkOpen reports whether any announced dark window is currently open —
// the collective watchdog's planned-quiet signal (Runner.PlannedDark).
func (f *Fabric) DarkOpen() bool { return f.darkOpen > 0 }

// InDark reports whether a specific circuit is currently retraining.
func (f *Fabric) InDark(id topology.LinkID) bool { return f.dark[id] }

// change builds the published view of epoch i.
func (f *Fabric) change(i int) EpochChange {
	e := f.Sched.Epochs[i]
	return EpochChange{Index: i, At: e.At, Dark: f.Sched.Dark, Removed: e.Removed, Added: e.Added}
}

// Arm schedules every epoch on the engine. The schedule must be sorted
// by At with no epoch in the engine's past, and epochs must not overlap
// a predecessor's dark window (a circuit cannot retrain into two
// mappings at once). d may be nil (no data-plane deferral); it is
// ignored when the fabric is Unannounced.
func (f *Fabric) Arm(eng *sim.Engine, d Darkener, h Hooks) error {
	now := eng.Now()
	prevEnd := sim.Time(-1)
	for i, e := range f.Sched.Epochs {
		if e.At < now {
			return fmt.Errorf("fabric: epoch %d at %v is in the past (now %v)", i, e.At, now)
		}
		if e.At <= prevEnd {
			return fmt.Errorf("fabric: epoch %d at %v overlaps previous dark window ending %v", i, e.At, prevEnd)
		}
		prevEnd = e.At + f.Sched.Dark
		for _, id := range append(append([]topology.LinkID{}, e.Removed...), e.Added...) {
			if id < 0 || int(id) >= f.G.NumLinks() {
				return fmt.Errorf("fabric: epoch %d references unknown link %d", i, id)
			}
		}
	}
	for i := range f.Sched.Epochs {
		i := i
		ch := f.change(i)
		if !f.Unannounced && f.Sched.Announce > 0 && ch.At-f.Sched.Announce >= now {
			eng.At(ch.At-f.Sched.Announce, func() {
				f.announced++
				if tc := telemetry.Active(); tc != nil {
					tc.Counter("fabric.announcements").Inc()
				}
				if h.Announce != nil {
					h.Announce(ch)
				}
			})
		}
		eng.At(ch.At, func() { f.commit(ch, d, h) })
		if f.Sched.Dark > 0 {
			eng.At(ch.At+f.Sched.Dark, func() { f.complete(ch, d, h) })
		}
	}
	return nil
}

// commit executes the switch-over. For an announced fabric the added
// circuits are marked dark *before* they are restored, so the netsim
// markUp path cannot start serializing onto a retraining circuit; an
// unannounced fabric leaves them failed until the window closes.
func (f *Fabric) commit(ch EpochChange, d Darkener, h Hooks) {
	announced := !f.Unannounced
	if ch.Dark > 0 {
		f.darkOpen++
		if announced {
			for _, id := range ch.Added {
				f.dark[id] = true
				if d != nil {
					d.SetLinkDark(id, true)
				}
			}
		}
	}
	for _, id := range ch.Removed {
		f.G.FailLink(id)
	}
	if announced || ch.Dark == 0 {
		for _, id := range ch.Added {
			f.G.RestoreLink(id)
		}
	}
	f.committed++
	if tc := telemetry.Active(); tc != nil {
		tc.Counter("fabric.epochs").Inc()
	}
	if h.Committed != nil {
		h.Committed(ch)
	}
	if ch.Dark == 0 {
		f.completed++
		if h.Completed != nil {
			h.Completed(ch)
		}
	}
}

// complete closes the epoch's dark window: announced fabrics clear the
// deferral marks (draining queued frames), unannounced ones finally
// bring the installed circuits up.
func (f *Fabric) complete(ch EpochChange, d Darkener, h Hooks) {
	if !f.Unannounced {
		for _, id := range ch.Added {
			delete(f.dark, id)
			if d != nil {
				d.SetLinkDark(id, false)
			}
		}
	} else {
		for _, id := range ch.Added {
			f.G.RestoreLink(id)
		}
	}
	f.darkOpen--
	f.completed++
	if h.Completed != nil {
		h.Completed(ch)
	}
}

// CheckEpochConsistent re-walks served trees after a switch-over and
// asserts none uses a removed circuit. walk must invoke its visitor once
// per cached/served tree with an identifying label and the tree's link
// set (service.(*Service).WalkTreeLinks has exactly this shape). Each
// tree records one check; a tree using any removed circuit records one
// violation naming the first offender.
func CheckEpochConsistent(s *invariant.Suite, removed []topology.LinkID, walk func(visit func(label string, links []topology.LinkID))) {
	if s == nil || walk == nil {
		return
	}
	rm := make(map[topology.LinkID]struct{}, len(removed))
	for _, id := range removed {
		rm[id] = struct{}{}
	}
	walk(func(label string, links []topology.LinkID) {
		for _, id := range links {
			if _, bad := rm[id]; bad {
				s.Violatef(EpochConsistent, "tree %q uses circuit %d removed at epoch switch-over", label, id)
				return
			}
		}
		s.Pass(EpochConsistent)
	})
}

// sortLinks is a test helper-ish utility used by Rotation to keep epoch
// link lists deterministic regardless of map iteration order.
func sortLinks(ids []topology.LinkID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
