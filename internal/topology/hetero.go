package topology

import (
	"fmt"
	"math/rand"
)

// Heterogeneous two-layer fat-trees (Solnushkin, arXiv 1301.6179).
//
// Real two-layer fabrics are rarely the textbook k-ary Clos: pods are
// populated incrementally, ToR models differ across procurement rounds,
// and oversubscription is a per-rack budgeting decision rather than a
// global constant. HeteroFatTree generates such fabrics from a seeded
// spec — per-pod ToR counts, per-ToR host counts and uplink radixes all
// drawn independently — so every scheme and invariant in this repository
// can be exercised on irregular graphs instead of only symmetric ones.
//
// The generated graph uses the Leaf/Spine tiers (ToRs are Leaf nodes, the
// upper layer Spine nodes), so EdgeSwitchOf, SwitchLinks, and TierLinks
// all work unmodified. K stays 0 (the prefix planner requires a k-ary
// fat-tree and is not applicable); PEEL falls back to the generic
// layer-peeling construction, which is exactly the point of the sweep.

// HeteroSpec parameterizes a heterogeneous two-layer fat-tree. Each
// [2]int field is an inclusive {min, max} range sampled uniformly per
// pod or per ToR.
type HeteroSpec struct {
	// Seed drives every draw; equal specs generate identical graphs.
	Seed int64
	// Spines is the upper-layer switch count.
	Spines int
	// Pods is the number of ToR groups.
	Pods int
	// ToRsPerPod is the {min, max} ToR count drawn per pod.
	ToRsPerPod [2]int
	// HostsPerToR is the {min, max} host count drawn per ToR.
	HostsPerToR [2]int
	// UplinksPerToR is the {min, max} spine-uplink count drawn per ToR,
	// clamped to [1, Spines] so every ToR stays connected.
	UplinksPerToR [2]int
}

// DefaultHeteroSpec returns a small irregular fabric: 4 spines, 4 pods
// of 1–3 ToRs, each ToR with 2–6 hosts behind 1–4 uplinks (up to 6:1
// oversubscribed per ToR).
func DefaultHeteroSpec(seed int64) HeteroSpec {
	return HeteroSpec{
		Seed:          seed,
		Spines:        4,
		Pods:          4,
		ToRsPerPod:    [2]int{1, 3},
		HostsPerToR:   [2]int{2, 6},
		UplinksPerToR: [2]int{1, 4},
	}
}

// HeteroToR records one generated ToR's draw: its node, host count, and
// uplink count (its oversubscription ratio is Hosts/Uplinks).
type HeteroToR struct {
	Node    NodeID
	Pod     int
	Hosts   int
	Uplinks int
}

// Oversub returns the ToR's declared oversubscription ratio.
func (t HeteroToR) Oversub() float64 { return float64(t.Hosts) / float64(t.Uplinks) }

// HeteroShape is the realized structure of a generated fabric: what the
// seeded draws produced, for tests and reports to assert against.
type HeteroShape struct {
	Spec   HeteroSpec
	Spines []NodeID
	ToRs   []HeteroToR
	Hosts  int
}

// MaxOversub returns the largest per-ToR oversubscription ratio drawn.
func (sh *HeteroShape) MaxOversub() float64 {
	max := 0.0
	for _, t := range sh.ToRs {
		if r := t.Oversub(); r > max {
			max = r
		}
	}
	return max
}

// validate rejects nonsensical specs; ranges are normalized (min>max is
// swapped) rather than rejected.
func (s *HeteroSpec) validate() error {
	if s.Spines < 1 || s.Pods < 1 {
		return fmt.Errorf("topology: hetero spec needs >=1 spine and >=1 pod, got %d/%d", s.Spines, s.Pods)
	}
	norm := func(r *[2]int, lo int) {
		if r[0] > r[1] {
			r[0], r[1] = r[1], r[0]
		}
		if r[0] < lo {
			r[0] = lo
		}
		if r[1] < r[0] {
			r[1] = r[0]
		}
	}
	norm(&s.ToRsPerPod, 1)
	norm(&s.HostsPerToR, 1)
	norm(&s.UplinksPerToR, 1)
	if s.UplinksPerToR[0] > s.Spines {
		s.UplinksPerToR[0] = s.Spines
	}
	if s.UplinksPerToR[1] > s.Spines {
		s.UplinksPerToR[1] = s.Spines
	}
	return nil
}

// draw samples an inclusive range.
func draw(rng *rand.Rand, r [2]int) int {
	if r[0] == r[1] {
		return r[0]
	}
	return r[0] + rng.Intn(r[1]-r[0]+1)
}

// HeteroFatTree generates a heterogeneous two-layer fat-tree from the
// spec and returns it with the realized shape. ToR t's uplinks connect
// to spines (t+j) mod Spines for j < uplinks, spreading uplink load
// round-robin across the spine layer. Because a two-layer fabric has no
// spine-to-spine links, single-uplink ToRs can land on mutually
// unreachable spines; a connectivity post-pass grafts any isolated
// component onto the first ToR's spine with one extra uplink (reflected
// in the shape), so the failure-free graph is always connected.
func HeteroFatTree(spec HeteroSpec) (*Graph, *HeteroShape) {
	if err := spec.validate(); err != nil {
		panic(err.Error())
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	g := NewGraph()
	sh := &HeteroShape{Spec: spec}
	sh.Spines = make([]NodeID, spec.Spines)
	for i := range sh.Spines {
		sh.Spines[i] = g.AddNode(Spine, -1, i, fmt.Sprintf("spine%d", i))
	}
	torGlobal := 0
	for p := 0; p < spec.Pods; p++ {
		tors := draw(rng, spec.ToRsPerPod)
		for t := 0; t < tors; t++ {
			hosts := draw(rng, spec.HostsPerToR)
			uplinks := draw(rng, spec.UplinksPerToR)
			tor := g.AddNode(Leaf, p, t, fmt.Sprintf("pod%d/tor%d", p, t))
			for j := 0; j < uplinks; j++ {
				g.AddLink(tor, sh.Spines[(torGlobal+j)%spec.Spines])
			}
			for h := 0; h < hosts; h++ {
				host := g.AddNode(Host, p, sh.Hosts+h, fmt.Sprintf("pod%d/tor%d/host%d", p, t, h))
				g.AddLink(tor, host)
			}
			sh.ToRs = append(sh.ToRs, HeteroToR{Node: tor, Pod: p, Hosts: hosts, Uplinks: uplinks})
			sh.Hosts += hosts
			torGlobal++
		}
	}
	// Connectivity post-pass: ToR 0's first uplink is spine 0, so that
	// spine anchors the main component; any ToR the anchor cannot reach
	// gets one bridging uplink. A disconnected ToR necessarily misses the
	// anchor spine, so the bridge never duplicates a link and never pushes
	// the uplink count past Spines.
	anchor := sh.Spines[0]
	reach := func() map[NodeID]bool {
		seen := map[NodeID]bool{anchor: true}
		queue := []NodeID{anchor}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, he := range g.Adj(n) {
				if !seen[he.Peer] {
					seen[he.Peer] = true
					queue = append(queue, he.Peer)
				}
			}
		}
		return seen
	}
	seen := reach()
	for i := range sh.ToRs {
		if seen[sh.ToRs[i].Node] {
			continue
		}
		g.AddLink(sh.ToRs[i].Node, anchor)
		sh.ToRs[i].Uplinks++
		seen = reach()
	}
	return g, sh
}
