// Failures: exercise the layer-peeling greedy (§2.3) on an asymmetric
// Clos — the paper's Fig. 7 leaf–spine with random spine–leaf failures —
// and measure its optimality gap against the exact Steiner solver and the
// max(F,|D|) lower bound at increasing failure rates.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"peel"
)

func main() {
	fmt.Println("layer-peeling vs exact Steiner under failures")
	fmt.Println("fabric: 8 spines × 12 leaves × 2 hosts, 8 receivers per group")
	fmt.Printf("%8s %10s %10s %10s %12s\n", "fail%", "greedy", "exact", "lowerbnd", "greedy/exact")

	for _, pct := range []float64{0, 2, 5, 10, 20} {
		var gSum, eSum, lSum float64
		var worst float64 = 1
		n, skipped := 0, 0
		for trial := 0; trial < 25; trial++ {
			rng := rand.New(rand.NewSource(int64(pct*100) + int64(trial)))
			g := peel.LeafSpine(8, 12, 2)
			peel.FailRandomSwitchLinks(g, pct/100, rng)

			hosts := g.Hosts()
			rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
			src, dests := hosts[0], hosts[1:9]

			tree, stats, err := peel.LayerPeeling(g, src, dests)
			if errors.Is(err, peel.ErrUnreachable) {
				skipped++ // the failures cut a destination off: no tree exists
				continue
			}
			if err != nil {
				log.Fatal(err) // anything else is a bug, not a degraded fabric
			}
			exact, err := peel.ExactSteinerCost(g, src, dests)
			if err != nil {
				log.Fatal(err)
			}
			lb, err := peel.SteinerLowerBound(g, src, dests)
			if err != nil {
				log.Fatal(err)
			}
			_ = stats
			gSum += float64(tree.Cost())
			eSum += float64(exact)
			lSum += float64(lb)
			if r := float64(tree.Cost()) / float64(exact); r > worst {
				worst = r
			}
			n++
		}
		fmt.Printf("%8.0f %10.2f %10.2f %10.2f %11.3fx (worst %.3fx over %d trials, %d skipped)\n",
			pct, gSum/float64(n), eSum/float64(n), lSum/float64(n), gSum/eSum, worst, n, skipped)
	}

	// One concrete walk-through, Fig. 2 style: show the tree the greedy
	// builds when a spine has lost most of its downlinks.
	fmt.Println("\nwalk-through: degraded spine forces the greedy around it")
	g := peel.LeafSpine(2, 3, 1)
	// Fail spine1's links to leaf1 and leaf2: only spine0 still covers
	// all leaves, and the greedy must pick it (max coverage).
	spines := g.NodesOfKind(peel.Spine)
	leaves := g.NodesOfKind(peel.Leaf)
	g.FailLink(g.LinkBetween(spines[1], leaves[1]))
	g.FailLink(g.LinkBetween(spines[1], leaves[2]))
	hosts := g.Hosts()
	tree, stats, err := peel.LayerPeeling(g, hosts[0], []peel.NodeID{hosts[1], hosts[2]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  F=%d, switches added by greedy=%d, tree cost=%d\n", stats.F, stats.SwitchesAdded, tree.Cost())
	for _, m := range tree.Members {
		parent := "-"
		if p := tree.Parent[m]; p >= 0 {
			parent = g.Node(p).Name
		}
		fmt.Printf("  %-14s <- %s\n", g.Node(m).Name, parent)
	}
}
