// Reliability: the paper defers loss recovery to RDMA's selective-repeat
// retransmissions (§1 footnote 1). This example injects link-level frame
// loss into the simulated fabric, broadcasts under PEEL and under a
// unicast ring, and prints completion times, retransmission counts, and
// the fabric telemetry snapshot — showing that multicast repairs
// end-to-end while ring relays re-detect loss hop by hop.
package main

import (
	"fmt"
	"log"

	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/topology"
	"peel/internal/workload"
)

func main() {
	const msg = int64(16) << 20
	fmt.Printf("one 16-host broadcast of %d MB under frame loss\n\n", msg>>20)
	fmt.Printf("%-8s %-10s %14s %10s %10s\n", "scheme", "loss", "CCT", "drops", "retrans")

	for _, scheme := range []collective.Scheme{collective.PEEL, collective.Ring} {
		for _, loss := range []float64{0, 0.005, 0.02} {
			g := topology.FatTree(8)
			eng := &sim.Engine{}
			cfg := netsim.DefaultConfig()
			cfg.FrameBytes = 64 << 10
			cfg.LossRate = loss
			net := netsim.New(g, eng, cfg)
			pl, err := core.NewPlanner(g)
			if err != nil {
				log.Fatal(err)
			}
			cl := workload.NewCluster(g, 8)
			runner := collective.NewRunner(net, cl, pl, controller.New(cfg.RNG(netsim.SaltController)))

			hosts := g.Hosts()
			c := &workload.Collective{Bytes: msg, GPUs: 128, Hosts: hosts[:16]}
			var cct sim.Time = -1
			if err := runner.Start(c, scheme, func(d sim.Time) { cct = d }); err != nil {
				log.Fatal(err)
			}
			if err := eng.Run(500_000_000); err != nil {
				log.Fatal(err)
			}
			if cct < 0 {
				log.Fatalf("%s at loss %v never completed", scheme, loss)
			}
			var retrans int64
			for _, f := range net.Flows() {
				retrans += f.Retransmissions
			}
			fmt.Printf("%-8s %-10.3f %14v %10d %10d\n", scheme, loss, cct.Duration(), net.TotalDrops, retrans)
		}
	}

	// Telemetry under loss: where did the bytes go, how deep did queues get?
	g := topology.FatTree(8)
	eng := &sim.Engine{}
	cfg := netsim.DefaultConfig()
	cfg.FrameBytes = 64 << 10
	cfg.LossRate = 0.01
	net := netsim.New(g, eng, cfg)
	pl, _ := core.NewPlanner(g)
	cl := workload.NewCluster(g, 8)
	runner := collective.NewRunner(net, cl, pl, controller.New(cfg.RNG(netsim.SaltController)))
	hosts := g.Hosts()
	c := &workload.Collective{Bytes: msg, GPUs: 256, Hosts: hosts[:32]}
	done := false
	if err := runner.Start(c, collective.PEEL, func(sim.Time) { done = true }); err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(500_000_000); err != nil {
		log.Fatal(err)
	}
	if !done {
		log.Fatal("telemetry run incomplete")
	}
	fmt.Printf("\ntelemetry (32-host PEEL broadcast @1%% loss):\n  %s\n", net.Telemetry())
}
