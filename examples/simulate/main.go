// Simulate: run one 256-GPU broadcast end-to-end on the packet-level
// simulator under every scheme the paper evaluates, and print the
// collective completion times and aggregate fabric bytes side by side —
// a miniature of Fig. 5's comparison.
package main

import (
	"fmt"
	"log"

	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/topology"
	"peel/internal/workload"
)

func main() {
	const (
		gpus = 256
		msg  = int64(64) << 20 // 64 MB
	)
	fmt.Printf("one %d-GPU broadcast of %d MB on an 8-ary fat-tree (128 hosts)\n\n", gpus, msg>>20)
	fmt.Printf("%-14s %14s %16s %12s\n", "scheme", "CCT", "fabric bytes", "vs optimal")

	type outcome struct {
		cct   sim.Time
		bytes int64
	}
	results := map[collective.Scheme]outcome{}
	for _, scheme := range collective.AllSchemes {
		g := topology.FatTree(8)
		eng := &sim.Engine{}
		cfg := netsim.DefaultConfig()
		cfg.FrameBytes = 256 << 10
		net := netsim.New(g, eng, cfg)
		planner, err := core.NewPlanner(g)
		if err != nil {
			log.Fatal(err)
		}
		cl := workload.NewCluster(g, 8)
		ctrl := controller.New(cfg.RNG(netsim.SaltController))
		runner := collective.NewRunner(net, cl, planner, ctrl)

		cols, err := cl.Generate(1, 0.3, cfg.LinkBps, workload.Spec{GPUs: gpus, Bytes: msg}, cfg.RNG(netsim.SaltWorkload))
		if err != nil {
			log.Fatal(err)
		}
		var cct sim.Time
		if err := runner.Start(cols[0], scheme, func(d sim.Time) { cct = d }); err != nil {
			log.Fatal(err)
		}
		if err := eng.Run(200_000_000); err != nil {
			log.Fatal(err)
		}
		results[scheme] = outcome{cct: cct, bytes: net.TotalBytes()}
	}
	opt := results[collective.Optimal].cct
	for _, scheme := range collective.AllSchemes {
		r := results[scheme]
		fmt.Printf("%-14s %14v %16d %11.2fx\n", scheme, r.cct.Duration(), r.bytes, float64(r.cct)/float64(opt))
	}

	fmt.Println("\n(the paper's Fig. 5/6: PEEL tracks the optimal tree; Orca pays the")
	fmt.Println(" SDN setup; unicast ring/tree pay per-hop re-transmission of the")
	fmt.Println(" message. Regenerate the full figures with: go run ./cmd/peelsim all)")
}
