// Statescale: the paper's switch-state headline across fabric degrees —
// PEEL's k−1 pre-installed rules versus naive per-group multicast entries
// and versus RSBF's Bloom-filter headers, for fat-trees from 256 to half
// a million hosts.
package main

import (
	"fmt"

	"peel"
	"peel/internal/bloom"
)

func main() {
	fmt.Println("switch state & packet overhead vs fabric degree (k-ary fat-tree)")
	fmt.Printf("%5s %9s %11s %16s %10s %14s\n",
		"k", "hosts", "PEEL rules", "naive entries", "PEEL hdr", "RSBF hdr@5%")
	for _, k := range []int{8, 16, 32, 64, 128} {
		s := peel.StateFor(k)
		rsbf := "-"
		if k <= 64 {
			rsbf = fmt.Sprintf("%d B", bloom.PerPacketOverheadBytes(k, 0.05))
		}
		fmt.Printf("%5d %9d %11d %16.3g %8d B %14s\n",
			s.K, s.Hosts, s.PEELRules, s.NaiveEntries, s.HeaderBytes, rsbf)
	}

	fmt.Println("\nthe k=64 headline (65,536 hosts):")
	s := peel.StateFor(64)
	fmt.Printf("  naive per-group state:  %.3g entries per aggregation switch\n", s.NaiveEntries)
	fmt.Printf("  PEEL static state:      %d entries, installed once, never touched\n", s.PEELRules)
	fmt.Printf("  PEEL packet overhead:   %d bits (%d bytes) per packet\n", s.HeaderBits, s.HeaderBytes)
	fmt.Printf("  RSBF packet overhead:   %d bytes at a generous 20%% FPR (> one %d B MTU)\n",
		bloom.PerPacketOverheadBytes(64, 0.20), bloom.MTU)

	// The full pre-installed table for one 64-ary aggregation switch, as
	// it would be pushed at deployment: every power-of-two rack block.
	rt, err := peel.NewRuleTable(32)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\none 64-ary aggregation switch's full TCAM (%d rules):\n", rt.NumEntries())
	count := 0
	for l := 0; l <= 5; l++ {
		fmt.Printf("  /%d rules: %d blocks of %d ToRs\n", l, 1<<l, 32>>l)
		count += 1 << l
	}
	fmt.Printf("  total %d = k−1 ✓\n", count)
}
