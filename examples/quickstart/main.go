// Quickstart: plan a PEEL multicast for one collective group on an 8-ary
// fat-tree and inspect everything the data plane needs — the per-packet
// ⟨prefix,len⟩ headers, the pre-installed rule table, and the delivery
// trees — then compare against the optimal Steiner tree.
package main

import (
	"fmt"
	"log"

	"peel"
)

func main() {
	// A 128-host fat-tree (k=8: 8 pods × 4 racks × 4 hosts).
	g := peel.FatTree(8)
	planner, err := peel.NewPlanner(g)
	if err != nil {
		log.Fatal(err)
	}

	// A bin-packed job: the first 24 hosts (racks 0..5), source first.
	hosts := g.Hosts()
	src, members := hosts[0], hosts[1:24]

	plan, err := planner.PlanGroup(src, members)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("group: %d members from source %s\n", len(plan.Members), g.Node(src).Name)
	fmt.Printf("header size: %d bytes per packet (paper: <8 B)\n\n", plan.HeaderBytes)

	fmt.Println("static prefix packets (deploy-once, touch-never):")
	for i, pkt := range plan.Packets {
		fmt.Printf("  packet %d: pod=%d  tor-prefix=%s  host-prefix=%s  receivers=%d  over-covered hosts=%d  tree-links=%d\n",
			i, pkt.Header.Pod,
			pkt.Header.ToR.Format(planner.ToRSpace.M),
			pkt.Header.Host.Format(planner.HostSpace.M),
			len(pkt.Receivers), pkt.OverHosts, pkt.Tree.Cost())
	}

	// The switch state this costs: one static table per aggregation
	// switch, independent of how many groups ever exist.
	rt, err := peel.NewRuleTable(g.K / 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-aggregation-switch TCAM: %d pre-installed entries (k−1)\n", rt.NumEntries())

	// Compare against the bandwidth-optimal Steiner tree.
	opt, err := peel.OptimalTree(g, src, members)
	if err != nil {
		log.Fatal(err)
	}
	var peelLinks int
	for _, pkt := range plan.Packets {
		peelLinks += pkt.Tree.Cost()
	}
	fmt.Printf("\nbandwidth (message-copies per link, one broadcast):\n")
	fmt.Printf("  optimal steiner tree: %d link-copies\n", opt.Cost())
	fmt.Printf("  peel static prefixes: %d link-copies (+%d%%)\n",
		peelLinks, (peelLinks-opt.Cost())*100/opt.Cost())

	// The headline state comparison for a production-scale fabric.
	s := peel.StateFor(64)
	fmt.Printf("\nat k=64 (%d hosts): %d PEEL rules vs %.3g naive per-group entries\n",
		s.Hosts, s.PEELRules, s.NaiveEntries)
}
