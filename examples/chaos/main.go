// Chaos: kill a multicast tree link while a broadcast is in flight and
// watch the collective layer repair itself. One 64-GPU broadcast of 32 MB
// runs on a k=4 fat-tree under PEEL; at 30% of the failure-free CCT a
// switch-to-switch link on the delivery tree fails (and never heals). The
// runner's receiver-progress watchdog detects the stall, pays the
// controller setup latency for repair rules, re-peels a tree on the
// degraded fabric, and delivers the message tail — the mid-flight
// counterpart of the paper's pre-degraded Fig. 7 experiment.
package main

import (
	"fmt"
	"log"

	"peel/internal/chaos"
	"peel/internal/collective"
	"peel/internal/controller"
	"peel/internal/core"
	"peel/internal/netsim"
	"peel/internal/sim"
	"peel/internal/topology"
	"peel/internal/workload"
)

const msg = int64(32) << 20

func main() {
	fmt.Printf("one 64-GPU broadcast of %d MB on a 4-ary fat-tree, PEEL\n\n", msg>>20)

	// Pass 1 — failure-free baseline, and the tree link we will kill.
	cleanRep, victim := run(nil, "clean")
	failAt := cleanRep.CCT * 3 / 10

	// Pass 2 — same seed, same collective; the victim link dies mid-flight.
	sched := (&chaos.Schedule{}).FailLinkAt(failAt, victim)
	chaosRep, _ := run(sched, "victim link down forever")

	fmt.Printf("\nclean CCT      %12v\n", cleanRep.CCT.Duration())
	fmt.Printf("chaos CCT      %12v  (%.2fx, link failed at %v)\n",
		chaosRep.CCT.Duration(), float64(chaosRep.CCT)/float64(cleanRep.CCT), failAt.Duration())
	r := chaosRep.Recovery
	fmt.Printf("recovery       stalls=%d repairs=%d unicastFallbacks=%d abandoned=%d\n",
		r.Stalls, r.Repairs, r.UnicastFallbacks, r.Abandoned)
	fmt.Printf("               first stall at %v, downtime %v\n",
		r.FirstStallAt.Duration(), r.Downtime.Duration())
}

// run simulates the broadcast once; sched (may be nil) is armed on the
// engine. Returns the runner's report and a switch-to-switch link of the
// optimal delivery tree (the chaos target for the second pass).
func run(sched *chaos.Schedule, label string) (collective.Report, topology.LinkID) {
	g := topology.FatTree(4)
	eng := &sim.Engine{}
	cfg := netsim.DefaultConfig()
	cfg.FrameBytes = 256 << 10
	net := netsim.New(g, eng, cfg)
	pl, err := core.NewPlanner(g)
	if err != nil {
		log.Fatal(err)
	}
	cl := workload.NewCluster(g, 8)
	runner := collective.NewRunner(net, cl, pl, controller.New(cfg.RNG(netsim.SaltController)))
	runner.Watchdog = 100 * sim.Microsecond

	cols, err := cl.Generate(1, 0.3, cfg.LinkBps, workload.Spec{GPUs: 64, Bytes: msg}, cfg.RNG(netsim.SaltWorkload))
	if err != nil {
		log.Fatal(err)
	}
	c := cols[0]

	// The chaos target: the first switch-to-switch edge of the exact tree.
	tree, err := core.BuildTree(g, c.Source(), c.Receivers())
	if err != nil {
		log.Fatal(err)
	}
	victim := topology.LinkID(-1)
	for _, m := range tree.Members {
		p := tree.Parent[m]
		if p == topology.None {
			continue
		}
		if g.Node(m).Kind.IsSwitch() && g.Node(p).Kind.IsSwitch() {
			victim = g.LinkBetween(m, p)
			break
		}
	}

	var rep collective.Report
	eng.At(0, func() {
		if err := runner.StartReport(c, collective.PEEL, func(r collective.Report) { rep = r }); err != nil {
			log.Fatal(err)
		}
	})
	if err := chaos.NewInjector(g, eng).Arm(sched); err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		log.Fatal(err)
	}
	tel := net.Telemetry()
	fmt.Printf("%-26s CCT=%v linkDrops=%d downLinks=%d downTime=%v\n",
		label+":", rep.CCT.Duration(), tel.LinkDrops, tel.DownLinks, tel.LinkDownTime.Duration())
	return rep, victim
}
