package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"peel/internal/topology"
)

func TestRealMainUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := realMain(context.Background(), []string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := realMain(context.Background(), []string{"extra"}, &out, &errOut); code != 2 {
		t.Fatalf("stray argument: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unexpected argument") {
		t.Fatalf("stray-argument error missing: %q", errOut.String())
	}
}

// TestRealMainServesAndDrains runs the full daemon path with an
// already-cancelled context: the listener binds, the drain executes
// immediately, and the exit is clean.
func TestRealMainServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	code := realMain(ctx, []string{"-addr", "127.0.0.1:0", "-k", "4", "-check", "-telemetry"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("lifecycle output missing: %q", out.String())
	}
	// -check prints the invariant report on the way out.
	if !strings.Contains(out.String(), "service.served-tree-fresh") {
		t.Fatalf("invariant report missing: %q", out.String())
	}
}

func TestRealMainFederationFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-router", "-replica", "r0", "-join", "http://x"},
		{"-replica", "r0"},
		{"-join", "http://x"},
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := realMain(context.Background(), args, &out, &errOut); code != 2 {
			t.Fatalf("%v: exit %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}

// proc is one in-process peeld run: realMain on its own context with its
// output scanned for the announced listen address.
type proc struct {
	cancel context.CancelFunc
	done   chan int
}

func (p *proc) stop(t *testing.T) int {
	t.Helper()
	p.cancel()
	select {
	case code := <-p.done:
		return code
	case <-time.After(10 * time.Second):
		t.Fatal("peeld did not drain")
		return -1
	}
}

func startPeeld(t *testing.T, args ...string) (*proc, string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	p := &proc{cancel: cancel, done: make(chan int, 1)}
	t.Cleanup(func() { cancel(); pr.Close() })
	go func() {
		p.done <- realMain(ctx, args, pw, pw)
		pw.Close()
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case a := <-addrCh:
		return p, a
	case <-time.After(10 * time.Second):
		t.Fatal("peeld never announced its listener")
		return nil, ""
	}
}

// TestRouterAndReplicaEndToEnd boots a federation router and a replica
// that self-registers over HTTP, serves a group through the pair, then
// takes the replica away and proves the router keeps answering.
func TestRouterAndReplicaEndToEnd(t *testing.T) {
	router, raddr := startPeeld(t, "-router", "-addr", "127.0.0.1:0", "-k", "4",
		"-health-interval", "20ms")
	routerURL := "http://" + raddr
	replica, _ := startPeeld(t, "-replica", "r0", "-join", routerURL,
		"-addr", "127.0.0.1:0", "-k", "4")

	type censusJSON struct {
		Events   uint64 `json:"events"`
		Replicas []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"replicas"`
	}
	waitReplica := func(state string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			var c censusJSON
			resp, err := http.Get(routerURL + "/v1/federation")
			if err == nil {
				err = json.NewDecoder(resp.Body).Decode(&c)
				resp.Body.Close()
			}
			if err == nil && len(c.Replicas) == 1 && c.Replicas[0].Name == "r0" && c.Replicas[0].State == state {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica never reached state %q (last census: %+v, err: %v)", state, c, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitReplica("up")

	hosts := topology.FatTree(4).Hosts()
	body := fmt.Sprintf(`{"id":"g1","members":[%d,%d,%d]}`, hosts[0], hosts[5], hosts[10])
	resp, err := http.Post(routerURL+"/v1/groups", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create group: %d", resp.StatusCode)
	}
	getTree := func() {
		t.Helper()
		resp, err := http.Get(routerURL + "/v1/groups/g1/tree")
		if err != nil {
			t.Fatal(err)
		}
		var tr struct {
			Cost  int        `json:"cost"`
			Edges [][2]int32 `json:"edges"`
		}
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || tr.Cost <= 0 || len(tr.Edges) != tr.Cost {
			t.Fatalf("tree: code %d err %v resp %+v", resp.StatusCode, err, tr)
		}
	}
	getTree() // served through the registered replica

	// Take the replica away: the router's health loop must mark it down
	// and requests must keep succeeding via direct re-peel.
	if code := replica.stop(t); code != 0 {
		t.Fatalf("replica exit %d", code)
	}
	waitReplica("down")
	getTree()

	if code := router.stop(t); code != 0 {
		t.Fatalf("router exit %d", code)
	}
}
