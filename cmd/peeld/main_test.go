package main

import (
	"context"
	"strings"
	"testing"
)

func TestRealMainUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := realMain(context.Background(), []string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := realMain(context.Background(), []string{"extra"}, &out, &errOut); code != 2 {
		t.Fatalf("stray argument: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unexpected argument") {
		t.Fatalf("stray-argument error missing: %q", errOut.String())
	}
}

// TestRealMainServesAndDrains runs the full daemon path with an
// already-cancelled context: the listener binds, the drain executes
// immediately, and the exit is clean.
func TestRealMainServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	code := realMain(ctx, []string{"-addr", "127.0.0.1:0", "-k", "4", "-check", "-telemetry"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("lifecycle output missing: %q", out.String())
	}
	// -check prints the invariant report on the way out.
	if !strings.Contains(out.String(), "service.served-tree-fresh") {
		t.Fatalf("invariant report missing: %q", out.String())
	}
}
