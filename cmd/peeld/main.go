// Command peeld runs the multicast control-plane service as a long-lived
// daemon: it owns a fat-tree fabric, serves the group-lifecycle HTTP/JSON
// API (create/join/leave/tree/delete plus chaos, stats, and run-report
// endpoints), and drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	peeld [flags]                        single-node service
//	peeld -router [flags]                federation router
//	peeld -replica NAME -join URL ...    replica that self-registers with a router
//
// Flags:
//
//	-addr A             listen address (default 127.0.0.1:7117; use :0 for ephemeral)
//	-k K                fat-tree arity of the owned fabric (default 8)
//	-shards N           tree-cache shard count, rounded to a power of two (default 16)
//	-max-inflight N     concurrent tree computations before 429 (default 2×GOMAXPROCS)
//	-cache-cap N        cached trees per shard, LRU-evicted (default 4096; -1 = unbounded)
//	-seed S             controller install-latency model seed (default 1)
//	-repair M           failure recompute mode: "patch" grafts orphaned receivers
//	                    into the surviving tree (default), "full" always re-peels
//	-request-timeout D  per-request deadline; slow peels answer 504 (default 10s; negative disables)
//	-wire-addr A        also serve the framed binary subscription protocol
//	                    (internal/service/wire) on A; clients SUBSCRIBE once and
//	                    receive pushed tree updates instead of polling (single-node only)
//	-telemetry          arm the telemetry sink (GET /v1/report serves the JSON run-report)
//	-check              arm the invariant checker suite; violations print at exit
//	                    and force a non-zero status
//
// Federation flags:
//
//	-router             serve as a federation router: own the group registry,
//	                    consistent-hash tree requests over the replica fleet,
//	                    replicate failure events, health-check and fail over
//	-replicas N         router: in-process replicas to start with (default 0;
//	                    HTTP replicas join at runtime via -replica/-join)
//	-health-interval D  router: replica health-probe period (default 1s)
//	-replica NAME       run single-node and self-register with a router under
//	                    NAME once the listener is up (requires -join)
//	-join URL           the router base URL to register with (requires -replica)
//
// A 3-replica local federation:
//
//	peeld -router -addr 127.0.0.1:7117 &
//	peeld -replica r0 -join http://127.0.0.1:7117 -addr 127.0.0.1:7118 &
//	peeld -replica r1 -join http://127.0.0.1:7117 -addr 127.0.0.1:7119 &
//	peeld -replica r2 -join http://127.0.0.1:7117 -addr 127.0.0.1:7120 &
//
// The same wiring is reachable as `peelsim serve` / `peelsim federate`
// for experiment workflows; both build through service.DaemonConfig.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"peel/internal/invariant"
	"peel/internal/service"
	"peel/internal/service/federation"
	"peel/internal/service/wire"
	"peel/internal/telemetry"
	"peel/internal/topology"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with the process boundary factored out so tests can
// drive the flag-parse → serve → drain path in-process. Exit codes:
// 0 clean drain, 1 serve failure or invariant violation, 2 usage error.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peeld", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "listen address (default 127.0.0.1:7117)")
	k := fs.Int("k", 0, "fat-tree arity (default 8)")
	shards := fs.Int("shards", 0, "tree-cache shard count (default 16)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent tree computations (default 2×GOMAXPROCS)")
	cacheCap := fs.Int("cache-cap", 0, "cached trees per shard (default 4096; -1 = unbounded)")
	seed := fs.Int64("seed", 0, "install-latency model seed (default 1)")
	repair := fs.String("repair", "", "failure recompute mode: patch (graft orphans, default) or full (always re-peel)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline (default 10s; negative disables)")
	wireAddr := fs.String("wire-addr", "", "also serve the framed binary subscription protocol on this address (single-node only)")
	useTelemetry := fs.Bool("telemetry", false, "arm the telemetry sink for GET /v1/report")
	check := fs.Bool("check", false, "arm the invariant checker suite")
	router := fs.Bool("router", false, "serve as a federation router")
	replicas := fs.Int("replicas", 0, "router: in-process replicas to start with")
	healthInterval := fs.Duration("health-interval", time.Second, "router: replica health-probe period")
	replicaName := fs.String("replica", "", "self-register with a federation router under this name (requires -join)")
	joinURL := fs.String("join", "", "router base URL to register with (requires -replica)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "peeld: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *router && (*replicaName != "" || *joinURL != "") {
		fmt.Fprintf(stderr, "peeld: -router and -replica/-join are mutually exclusive\n")
		return 2
	}
	if (*replicaName == "") != (*joinURL == "") {
		fmt.Fprintf(stderr, "peeld: -replica and -join must be set together\n")
		return 2
	}
	if *repair != "" && *repair != service.RepairPatch && *repair != service.RepairFull {
		fmt.Fprintf(stderr, "peeld: unknown -repair mode %q (want %q or %q)\n",
			*repair, service.RepairPatch, service.RepairFull)
		return 2
	}
	if *wireAddr != "" && *router {
		fmt.Fprintf(stderr, "peeld: -wire-addr requires single-node mode (not -router)\n")
		return 2
	}

	if *useTelemetry {
		defer telemetry.Enable(telemetry.NewSink(0))()
	}
	var suite *invariant.Suite
	if *check {
		suite = invariant.NewSuite()
		defer invariant.Enable(suite)()
	}

	var code int
	if *router {
		code = serveRouter(ctx, routerConfig{
			addr:           *addr,
			k:              *k,
			replicas:       *replicas,
			healthInterval: *healthInterval,
			requestTimeout: *reqTimeout,
			opts: service.Options{
				Shards:      *shards,
				MaxInflight: *maxInflight,
				CacheCap:    *cacheCap,
				Seed:        *seed,
				Repair:      *repair,
			},
		}, stdout, stderr)
	} else {
		cfg := service.DaemonConfig{
			Addr:           *addr,
			K:              *k,
			Shards:         *shards,
			MaxInflight:    *maxInflight,
			CacheCap:       *cacheCap,
			Seed:           *seed,
			Repair:         *repair,
			RequestTimeout: *reqTimeout,
		}
		if *wireAddr != "" {
			cfg.Aux = wire.Hook(*wireAddr, wire.Options{}, func(addr string) {
				fmt.Fprintf(stdout, "peeld: wire protocol listening on %s\n", addr)
			})
		}
		if *replicaName != "" {
			name, join := *replicaName, *joinURL
			cfg.OnReady = func(addr string) {
				go selfRegister(ctx, join, name, "http://"+addr, stdout, stderr)
			}
		}
		code = service.Serve(ctx, cfg, stdout, stderr)
	}

	if suite != nil {
		fmt.Fprint(stdout, suite.Report())
		if suite.TotalViolations() > 0 {
			fmt.Fprintf(stderr, "peeld: %d invariant violation(s)\n", suite.TotalViolations())
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

type routerConfig struct {
	addr           string
	k              int
	replicas       int
	healthInterval time.Duration
	requestTimeout time.Duration
	opts           service.Options
}

// serveRouter runs the federation-router daemon: the stock HTTP handler
// set over a federation.Federation instead of a single service.
func serveRouter(ctx context.Context, rc routerConfig, stdout, stderr io.Writer) int {
	k := rc.k
	if k == 0 {
		k = 8
	}
	if k < 2 || k%2 != 0 {
		fmt.Fprintf(stderr, "peeld: fat-tree arity %d must be even and >= 2\n", k)
		return 1
	}
	fed, err := federation.New(federation.Config{
		NewGraph:       func() *topology.Graph { return topology.FatTree(k) },
		Replicas:       rc.replicas,
		ServiceOpts:    rc.opts,
		HealthInterval: rc.healthInterval,
	})
	if err != nil {
		fmt.Fprintf(stderr, "peeld: %v\n", err)
		return 1
	}
	d := service.NewDaemonFor(fed, service.DaemonConfig{
		Addr:           rc.addr,
		RequestTimeout: rc.requestTimeout,
		OnReady: func(addr string) {
			fmt.Fprintf(stdout, "peeld: federation router listening on %s (k=%d fabric, %d in-process replicas, probe every %v)\n",
				addr, k, rc.replicas, rc.healthInterval)
		},
	})
	if err := d.Run(ctx); err != nil {
		fmt.Fprintf(stderr, "peeld: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "peeld: drained cleanly\n")
	return 0
}

// selfRegister announces this replica to the federation router, retrying
// with backoff until the router answers (it may still be booting) or ctx
// ends. The router probes the replica back and replays missed failure
// events before routing to it, so registration succeeding means the
// replica is caught up.
func selfRegister(ctx context.Context, joinURL, name, selfURL string, stdout, stderr io.Writer) {
	body, _ := json.Marshal(map[string]string{"name": name, "addr": selfURL})
	delay := 200 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			joinURL+"/v1/federation/join", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(stderr, "peeld: register with %s: %v\n", joinURL, err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				var out struct {
					Events int `json:"events"`
				}
				json.Unmarshal(raw, &out) //nolint:errcheck // best-effort detail for the log line
				fmt.Fprintf(stdout, "peeld: registered as %q with %s (%d events replayed)\n", name, joinURL, out.Events)
				return
			}
			err = fmt.Errorf("router answered %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		}
		fmt.Fprintf(stderr, "peeld: register with %s: %v (retrying in %v)\n", joinURL, err, delay)
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
		if delay < 5*time.Second {
			delay *= 2
		}
	}
}
