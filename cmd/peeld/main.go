// Command peeld runs the multicast control-plane service as a long-lived
// daemon: it owns a fat-tree fabric, serves the group-lifecycle HTTP/JSON
// API (create/join/leave/tree/delete plus chaos, stats, and run-report
// endpoints), and drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	peeld [flags]
//
// Flags:
//
//	-addr A          listen address (default 127.0.0.1:7117; use :0 for ephemeral)
//	-k K             fat-tree arity of the owned fabric (default 8)
//	-shards N        tree-cache shard count, rounded to a power of two (default 16)
//	-max-inflight N  concurrent tree computations before 429 (default 2×GOMAXPROCS)
//	-cache-cap N     cached trees per shard, LRU-evicted (default 4096; -1 = unbounded)
//	-seed S          controller install-latency model seed (default 1)
//	-telemetry       arm the telemetry sink (GET /v1/report serves the JSON run-report)
//	-check           arm the invariant checker suite; violations print at exit
//	                 and force a non-zero status
//
// The same wiring is reachable as `peelsim serve` for experiment
// workflows; both build through service.DaemonConfig.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"peel/internal/invariant"
	"peel/internal/service"
	"peel/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with the process boundary factored out so tests can
// drive the flag-parse → serve → drain path in-process. Exit codes:
// 0 clean drain, 1 serve failure or invariant violation, 2 usage error.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peeld", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "listen address (default 127.0.0.1:7117)")
	k := fs.Int("k", 0, "fat-tree arity (default 8)")
	shards := fs.Int("shards", 0, "tree-cache shard count (default 16)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent tree computations (default 2×GOMAXPROCS)")
	cacheCap := fs.Int("cache-cap", 0, "cached trees per shard (default 4096; -1 = unbounded)")
	seed := fs.Int64("seed", 0, "install-latency model seed (default 1)")
	useTelemetry := fs.Bool("telemetry", false, "arm the telemetry sink for GET /v1/report")
	check := fs.Bool("check", false, "arm the invariant checker suite")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "peeld: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	if *useTelemetry {
		defer telemetry.Enable(telemetry.NewSink(0))()
	}
	var suite *invariant.Suite
	if *check {
		suite = invariant.NewSuite()
		defer invariant.Enable(suite)()
	}

	code := service.Serve(ctx, service.DaemonConfig{
		Addr:        *addr,
		K:           *k,
		Shards:      *shards,
		MaxInflight: *maxInflight,
		CacheCap:    *cacheCap,
		Seed:        *seed,
	}, stdout, stderr)

	if suite != nil {
		fmt.Fprint(stdout, suite.Report())
		if suite.TotalViolations() > 0 {
			fmt.Fprintf(stderr, "peeld: %d invariant violation(s)\n", suite.TotalViolations())
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}
