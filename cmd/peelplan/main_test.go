package main

import (
	"reflect"
	"testing"
)

func TestParseIndices(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"1,5,9-12", []int{1, 5, 9, 10, 11, 12}, false},
		{"3", []int{3}, false},
		{"0-2", []int{0, 1, 2}, false},
		{" 4 , 6 ", []int{4, 6}, false},
		{"7-7", []int{7}, false},
		{"", nil, true},
		{"5-2", nil, true},
		{"a", nil, true},
		{"1-b", nil, true},
		{",,,", nil, true},
	}
	for _, c := range cases {
		got, err := parseIndices(c.in)
		if c.err {
			if err == nil {
				t.Errorf("%q: expected error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%q: got %v want %v", c.in, got, c.want)
		}
	}
}
