// Command peelplan plans a PEEL multicast group on a k-ary fat-tree and
// prints what the data plane would carry: one line per prefix packet with
// its ⟨prefix,len⟩ header (and hex encoding), the receivers it serves,
// and its over-coverage, plus the switch-state bill.
//
// Usage:
//
//	peelplan -k 8 -src 0 -members 1-31
//	peelplan -k 8 -src 0 -members 1,5,9-12,20 -budget 1 -torfilter
//
// Host indices are positions in the fabric's host list (0 … k³/4−1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"peel"
)

func main() {
	k := flag.Int("k", 8, "fat-tree arity (even)")
	srcIdx := flag.Int("src", 0, "source host index")
	membersSpec := flag.String("members", "", "member host indices, e.g. 1,5,9-12")
	budget := flag.Int("budget", 0, "max prefixes (packets) per destination pod; 0 = exact cover")
	torFilter := flag.Bool("torfilter", false, "model membership-filtering ToRs (§3.4)")
	flag.Parse()

	if *membersSpec == "" {
		fmt.Fprintln(os.Stderr, "peelplan: -members is required")
		flag.Usage()
		os.Exit(2)
	}
	idxs, err := parseIndices(*membersSpec)
	if err != nil {
		fatal(err)
	}

	g := peel.FatTree(*k)
	planner, err := peel.NewPlanner(g)
	if err != nil {
		fatal(err)
	}
	hosts := g.Hosts()
	if *srcIdx < 0 || *srcIdx >= len(hosts) {
		fatal(fmt.Errorf("source index %d out of range (fabric has %d hosts)", *srcIdx, len(hosts)))
	}
	src := hosts[*srcIdx]
	members := make([]peel.NodeID, 0, len(idxs))
	for _, i := range idxs {
		if i < 0 || i >= len(hosts) {
			fatal(fmt.Errorf("member index %d out of range (fabric has %d hosts)", i, len(hosts)))
		}
		members = append(members, hosts[i])
	}

	plan, err := planner.PlanGroupOpts(src, members, peel.PlanOptions{PacketBudget: *budget, ToRFilter: *torFilter})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("fabric: %d-ary fat-tree, %d hosts; source %s; %d members\n",
		*k, len(hosts), g.Node(src).Name, len(plan.Members))
	fmt.Printf("header: %d byte(s) per packet\n\n", plan.HeaderBytes)
	fmt.Printf("%-4s %-5s %-10s %-10s %-10s %-10s %-9s %s\n",
		"pkt", "pod", "tor-pfx", "host-pfx", "hdr(hex)", "receivers", "over", "tree-links")
	totalLinks := 0
	for i := range plan.Packets {
		p := &plan.Packets[i]
		enc, err := planner.Codec.Encode(p.Header)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-4d %-5d %-10s %-10s %-10x %-10d %2d/%-6d %d\n",
			i, p.Header.Pod,
			p.Header.ToR.Format(planner.ToRSpace.M),
			p.Header.Host.Format(planner.HostSpace.M),
			enc, len(p.Receivers), p.OverToRs, p.OverHosts, p.Tree.Cost())
		totalLinks += p.Tree.Cost()
	}

	opt, err := peel.OptimalTree(g, src, members)
	if err != nil {
		fatal(err)
	}
	s := peel.StateFor(*k)
	fmt.Printf("\ntotals: %d packets, %d link-copies (optimal steiner: %d, +%.0f%%), %d over-covered hosts\n",
		len(plan.Packets), totalLinks, opt.Cost(),
		100*float64(totalLinks-opt.Cost())/float64(opt.Cost()), plan.TotalOverHosts())
	fmt.Printf("switch state: %d static rules per aggregation switch (naive per-group: %.3g)\n",
		s.PEELRules, s.NaiveEntries)
}

// parseIndices parses "1,5,9-12" into a sorted index list.
func parseIndices(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("bad range %q: %v", part, err)
			}
			b, err := strconv.Atoi(hi)
			if err != nil {
				return nil, fmt.Errorf("bad range %q: %v", part, err)
			}
			if b < a {
				return nil, fmt.Errorf("bad range %q: end before start", part)
			}
			for i := a; i <= b; i++ {
				out = append(out, i)
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad index %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no member indices in %q", spec)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peelplan:", err)
	os.Exit(1)
}
