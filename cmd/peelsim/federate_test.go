package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestFederateMainUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"stray"},
		{"-k", "3"},
		{"-replicas", "0"},
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := federateMain(context.Background(), args, &out, &errOut); code != 2 {
			t.Fatalf("%v: exit %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}

// TestFederateMainChaosRunIsClean drives a short checked federated chaos
// run end to end through the subcommand (via realMain dispatch) and
// asserts zero failed ops, chaos actually fired, and a parseable report.
func TestFederateMainChaosRunIsClean(t *testing.T) {
	var out, errOut strings.Builder
	code := realMain([]string{"federate",
		"-k", "4", "-replicas", "2", "-groups", "8", "-group-size", "4",
		"-ops", "1000", "-flap-every", "100", "-kill-every", "150", "-check"},
		&out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	// The JSON report leads the output; the invariant report follows it.
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var report struct {
		Config struct {
			K        int `json:"k"`
			Replicas int `json:"replicas"`
		} `json:"config"`
		Stats struct {
			Ops    int `json:"ops"`
			Errors int `json:"errors"`
			Kills  int `json:"replica_kills"`
			Flaps  int `json:"flaps"`
		} `json:"stats"`
		Census struct {
			Replicas []struct {
				Name string `json:"name"`
			} `json:"replicas"`
		} `json:"census"`
	}
	if err := dec.Decode(&report); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if report.Config.K != 4 || report.Config.Replicas != 2 {
		t.Fatalf("config echoed wrong: %+v", report.Config)
	}
	if report.Stats.Ops != 1000 || report.Stats.Errors != 0 {
		t.Fatalf("stats: %+v", report.Stats)
	}
	if report.Stats.Kills == 0 || report.Stats.Flaps == 0 {
		t.Fatalf("chaos never fired: %+v", report.Stats)
	}
	if len(report.Census.Replicas) != 2 {
		t.Fatalf("census lists %d replicas, want 2", len(report.Census.Replicas))
	}
	if !strings.Contains(out.String(), "federation.answer-oracle-identical") {
		t.Fatalf("invariant report missing federation check:\n%s", out.String())
	}
}
