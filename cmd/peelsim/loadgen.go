package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"peel/internal/invariant"
	"peel/internal/service"
	"peel/internal/service/loadgen"
	"peel/internal/service/wire"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// loadgenMain implements `peelsim loadgen`: a single-node control-plane
// churn run with an optional propagation probe. With -propagation push it
// starts an in-process wire server, subscribes wire clients, and reports
// the flap-to-receipt latency distribution of server-pushed tree
// updates; with -propagation poll it runs the GetTree polling baseline
// at -poll-interval for a directly comparable number. The propagation
// stats land under "propagation" in the JSON output. Exit codes: 0
// clean, 1 failed ops or invariant violation, 2 usage.
func loadgenMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peelsim loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	k := fs.Int("k", 8, "fat-tree arity")
	groups := fs.Int("groups", 64, "pre-created group count")
	groupSize := fs.Int("group-size", 8, "hosts per group")
	ops := fs.Int("ops", 20000, "total operation budget")
	workers := fs.Int("workers", 1, "closed-loop workers (1 = deterministic)")
	seed := fs.Int64("seed", 1, "workload seed")
	flapEvery := fs.Int("flap-every", 200, "fail a link every N worker-0 ops (0 = off)")
	pace := fs.Duration("pace", 0, "sleep between ops on every worker (paced load; propagation probes need it)")
	repair := fs.String("repair", "", "failure recompute mode: patch (graft orphans, default) or full (always re-peel)")
	propagation := fs.String("propagation", "", "measure update-propagation latency: push (wire subscribers) or poll (GetTree baseline)")
	subscribers := fs.Int("subscribers", 4, "propagation subscribers/pollers")
	groupsEach := fs.Int("groups-each", 4, "groups tracked per subscriber")
	pollInterval := fs.Duration("poll-interval", 5*time.Millisecond, "GetTree cadence for -propagation poll")
	check := fs.Bool("check", false, "arm the invariant checker suite")
	telemetryOut := fs.String("telemetry", "", "arm the telemetry sink and write the run-report to file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "peelsim loadgen: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *k < 2 || *k%2 != 0 {
		fmt.Fprintf(stderr, "peelsim loadgen: fat-tree arity %d must be even and >= 2\n", *k)
		return 2
	}
	if *repair != "" && *repair != service.RepairPatch && *repair != service.RepairFull {
		fmt.Fprintf(stderr, "peelsim loadgen: -repair %q (want %q or %q)\n",
			*repair, service.RepairPatch, service.RepairFull)
		return 2
	}
	if *propagation != "" && *propagation != "push" && *propagation != "poll" {
		fmt.Fprintf(stderr, "peelsim loadgen: -propagation %q (want \"push\" or \"poll\")\n", *propagation)
		return 2
	}
	if *propagation != "" && *pace == 0 {
		// A saturating closed loop starves the push pipeline's goroutine
		// handoffs and measures scheduler queuing, not propagation.
		*pace = 200 * time.Microsecond
	}

	var sink *telemetry.Sink
	if *telemetryOut != "" {
		sink = telemetry.NewSink(0)
		defer telemetry.Enable(sink)()
	}
	var suite *invariant.Suite
	if *check {
		suite = invariant.NewSuite()
		defer invariant.Enable(suite)()
	}

	g := topology.FatTree(*k)
	svc := service.New(g, service.Options{Repair: *repair})
	defer svc.Close()

	gen, err := loadgen.New(svc, svc, workload.NewCluster(g, 1), loadgen.Config{
		Groups:    *groups,
		GroupSize: *groupSize,
		Workers:   *workers,
		Ops:       *ops,
		Seed:      *seed,
		FlapEvery: *flapEvery,
		Pace:      *pace,
	})
	if err != nil {
		fmt.Fprintf(stderr, "peelsim loadgen: %v\n", err)
		return 1
	}

	if *propagation != "" {
		cfg := loadgen.PropagationConfig{
			Mode:         *propagation,
			Subscribers:  *subscribers,
			GroupsEach:   *groupsEach,
			PollInterval: *pollInterval,
		}
		if *propagation == "push" {
			srv := wire.NewServer(svc, wire.Options{})
			var addr string
			if err := srv.ListenAndServe("127.0.0.1:0", func(a string) { addr = a }); err != nil {
				fmt.Fprintf(stderr, "peelsim loadgen: wire server: %v\n", err)
				return 1
			}
			defer srv.Close()
			cfg.WireAddr = addr
		}
		if err := gen.ArmPropagation(cfg); err != nil {
			fmt.Fprintf(stderr, "peelsim loadgen: %v\n", err)
			return 1
		}
	}

	st := gen.Run(ctx)
	out := struct {
		Config struct {
			K           int    `json:"k"`
			Propagation string `json:"propagation,omitempty"`
		} `json:"config"`
		Stats loadgen.Stats `json:"stats"`
	}{Stats: st}
	out.Config.K = *k
	out.Config.Propagation = *propagation
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(stderr, "peelsim loadgen: %v\n", err)
		return 1
	}

	code := 0
	if st.Errors != 0 {
		fmt.Fprintf(stderr, "peelsim loadgen: %d failed client operations\n", st.Errors)
		code = 1
	}
	if sink != nil {
		w := stdout.(io.Writer)
		if *telemetryOut != "-" {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				fmt.Fprintf(stderr, "peelsim loadgen: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := sink.Report("peelsim-loadgen").WriteJSON(w); err != nil {
			fmt.Fprintf(stderr, "peelsim loadgen: %v\n", err)
			return 1
		}
	}
	if suite != nil {
		fmt.Fprint(stdout, suite.Report())
		if suite.TotalViolations() > 0 {
			fmt.Fprintf(stderr, "peelsim loadgen: %d invariant violation(s)\n", suite.TotalViolations())
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}
