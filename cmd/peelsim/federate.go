package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"peel/internal/invariant"
	"peel/internal/service"
	"peel/internal/service/federation"
	"peel/internal/service/loadgen"
	"peel/internal/telemetry"
	"peel/internal/topology"
	"peel/internal/workload"
)

// federateMain implements `peelsim federate`: an in-process federated
// chaos run — N replicas behind the router, a mixed control-plane
// workload, scripted link flaps AND replica kill/restart — reported as
// JSON stats plus the final fleet census. With -workers 1 the run is
// fully deterministic (op-count-keyed chaos schedules, synchronous
// failover mode), which is what the CI federation-smoke job pins.
// Exit codes: 0 clean, 1 failed ops or invariant violation, 2 usage.
func federateMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peelsim federate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	k := fs.Int("k", 8, "fat-tree arity")
	replicas := fs.Int("replicas", 3, "in-process replica count")
	groups := fs.Int("groups", 64, "pre-created group count")
	groupSize := fs.Int("group-size", 8, "hosts per group")
	ops := fs.Int("ops", 20000, "total operation budget")
	workers := fs.Int("workers", 1, "closed-loop workers (1 = deterministic)")
	seed := fs.Int64("seed", 1, "workload seed")
	flapEvery := fs.Int("flap-every", 200, "fail a link every N worker-0 ops (0 = off)")
	killEvery := fs.Int("kill-every", 500, "kill a replica every N worker-0 ops (0 = off)")
	repair := fs.String("repair", "", "failure recompute mode: patch (graft orphans, default) or full (always re-peel)")
	check := fs.Bool("check", false, "arm the invariant checker suite")
	telemetryOut := fs.String("telemetry", "", "arm the telemetry sink and write the run-report to file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "peelsim federate: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *k < 2 || *k%2 != 0 {
		fmt.Fprintf(stderr, "peelsim federate: fat-tree arity %d must be even and >= 2\n", *k)
		return 2
	}
	if *replicas < 1 {
		fmt.Fprintf(stderr, "peelsim federate: need at least one replica\n")
		return 2
	}
	if *repair != "" && *repair != service.RepairPatch && *repair != service.RepairFull {
		fmt.Fprintf(stderr, "peelsim federate: unknown -repair mode %q (want %q or %q)\n",
			*repair, service.RepairPatch, service.RepairFull)
		return 2
	}

	var sink *telemetry.Sink
	if *telemetryOut != "" {
		sink = telemetry.NewSink(0)
		defer telemetry.Enable(sink)()
	}
	var suite *invariant.Suite
	if *check {
		suite = invariant.NewSuite()
		defer invariant.Enable(suite)()
	}

	fed, err := federation.New(federation.Config{
		NewGraph:    func() *topology.Graph { return topology.FatTree(*k) },
		Replicas:    *replicas,
		ServiceOpts: service.Options{Repair: *repair},
		// Synchronous mode: kills and restarts flip routing state at the
		// op boundary that scripted them, so a single-worker run replays
		// byte-identically.
		HealthInterval: 0,
	})
	if err != nil {
		fmt.Fprintf(stderr, "peelsim federate: %v\n", err)
		return 1
	}
	defer fed.Close()

	gen, err := loadgen.New(fed, fed, workload.NewCluster(fed.Oracle().Graph(), 1), loadgen.Config{
		Groups:    *groups,
		GroupSize: *groupSize,
		Workers:   *workers,
		Ops:       *ops,
		Seed:      *seed,
		FlapEvery: *flapEvery,
		KillEvery: *killEvery,
	})
	if err != nil {
		fmt.Fprintf(stderr, "peelsim federate: %v\n", err)
		return 1
	}
	if *killEvery > 0 {
		if err := gen.ArmReplicaChaos(fed); err != nil {
			fmt.Fprintf(stderr, "peelsim federate: %v\n", err)
			return 1
		}
	}

	st := gen.Run(ctx)
	out := struct {
		Config struct {
			K        int `json:"k"`
			Replicas int `json:"replicas"`
		} `json:"config"`
		Stats  loadgen.Stats         `json:"stats"`
		Census federation.CensusInfo `json:"census"`
	}{Stats: st, Census: fed.Census()}
	out.Config.K = *k
	out.Config.Replicas = *replicas
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(stderr, "peelsim federate: %v\n", err)
		return 1
	}

	code := 0
	if st.Errors != 0 {
		fmt.Fprintf(stderr, "peelsim federate: %d failed client operations\n", st.Errors)
		code = 1
	}
	if sink != nil {
		fed.RefreshGauges()
		w := stdout.(io.Writer)
		if *telemetryOut != "-" {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				fmt.Fprintf(stderr, "peelsim federate: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := sink.Report("peelsim-federate").WriteJSON(w); err != nil {
			fmt.Fprintf(stderr, "peelsim federate: %v\n", err)
			return 1
		}
	}
	if suite != nil {
		fmt.Fprint(stdout, suite.Report())
		if suite.TotalViolations() > 0 {
			fmt.Fprintf(stderr, "peelsim federate: %d invariant violation(s)\n", suite.TotalViolations())
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}
