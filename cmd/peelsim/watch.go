package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	"peel/internal/service/wire"
)

// watchMain implements `peelsim watch`: subscribe to groups over a
// daemon's wire protocol and print one JSON line per pushed tree update —
// the CLI face of the push path (CI's kill-and-reconnect smoke drives
// it). Exit codes: 0 done (count reached, timeout elapsed, or interrupt),
// 1 connection failure, 2 usage error.
func watchMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peelsim watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "wire-protocol address of the daemon (required; see peeld -wire-addr)")
	groups := fs.String("groups", "", "comma-separated group IDs to subscribe to (required)")
	count := fs.Int("count", 0, "exit after N updates (0 = run until -timeout or interrupt)")
	timeout := fs.Duration("timeout", 0, "exit after this long (0 = no limit)")
	reconnect := fs.Bool("reconnect", false, "redial and re-subscribe after a broken connection")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "peelsim watch: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	gids := strings.FieldsFunc(*groups, func(r rune) bool { return r == ',' })
	if *addr == "" || len(gids) == 0 {
		fmt.Fprintf(stderr, "peelsim watch: -addr and -groups are required\n")
		fs.Usage()
		return 2
	}

	c, err := wire.Dial(*addr, wire.ClientOptions{Reconnect: *reconnect})
	if err != nil {
		fmt.Fprintf(stderr, "peelsim watch: %v\n", err)
		return 1
	}
	defer c.Close()
	for _, gid := range gids {
		if err := c.Subscribe(gid); err != nil {
			fmt.Fprintf(stderr, "peelsim watch: subscribe %q: %v\n", gid, err)
			return 1
		}
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// One JSON line per update, flushed as it arrives so pipelines and the
	// CI smoke can tail the stream.
	type updateJSON struct {
		Group   string            `json:"group"`
		Gen     uint64            `json:"gen"`
		Seq     uint64            `json:"seq"`
		Source  int32             `json:"source"`
		Edges   int               `json:"edges"`
		Patched bool              `json:"patched,omitempty"`
		Resync  bool              `json:"resync,omitempty"`
		Failure bool              `json:"failure,omitempty"`
		Error   string            `json:"error,omitempty"`
		Stats   *wire.ClientStats `json:"stats,omitempty"`
	}
	enc := json.NewEncoder(stdout)
	seen := 0
	for {
		select {
		case <-ctx.Done():
			st := c.Stats()
			enc.Encode(updateJSON{Group: "", Stats: &st})
			return 0
		case u, ok := <-c.Updates():
			if !ok {
				fmt.Fprintf(stderr, "peelsim watch: connection closed\n")
				return 1
			}
			out := updateJSON{
				Group:   u.Group,
				Gen:     u.Gen,
				Seq:     u.Seq,
				Source:  int32(u.Source),
				Edges:   len(u.Edges),
				Patched: u.Patched(),
				Resync:  u.Resync(),
				Failure: u.FailureDriven(),
			}
			if u.Err != nil {
				out.Error = u.Err.Error()
			}
			enc.Encode(out)
			if u.Err == nil {
				seen++
				if *count > 0 && seen >= *count {
					st := c.Stats()
					enc.Encode(updateJSON{Group: "", Stats: &st})
					return 0
				}
			}
		}
	}
}
