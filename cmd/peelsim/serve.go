package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"peel/internal/invariant"
	"peel/internal/service"
	"peel/internal/service/wire"
	"peel/internal/telemetry"
)

// serveMain implements `peelsim serve`: the control-plane daemon behind
// the same service.DaemonConfig construction path as cmd/peeld, so
// experiment workflows and the deployment binary cannot drift apart.
// Exit codes match realMain: 0 clean drain, 1 failure or invariant
// violation, 2 usage error.
func serveMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peelsim serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "listen address (default 127.0.0.1:7117)")
	k := fs.Int("k", 0, "fat-tree arity (default 8)")
	shards := fs.Int("shards", 0, "tree-cache shard count (default 16)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent tree computations (default 2×GOMAXPROCS)")
	cacheCap := fs.Int("cache-cap", 0, "cached trees per shard (default 4096; -1 = unbounded)")
	seed := fs.Int64("seed", 0, "install-latency model seed (default 1)")
	repair := fs.String("repair", "", "failure recompute mode: patch (graft orphans, default) or full (always re-peel)")
	wireAddr := fs.String("wire-addr", "", "also serve the framed binary subscription protocol on this address")
	useTelemetry := fs.Bool("telemetry", false, "arm the telemetry sink for GET /v1/report")
	check := fs.Bool("check", false, "arm the invariant checker suite")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "peelsim serve: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	if *useTelemetry {
		defer telemetry.Enable(telemetry.NewSink(0))()
	}
	var suite *invariant.Suite
	if *check {
		suite = invariant.NewSuite()
		defer invariant.Enable(suite)()
	}

	cfg := service.DaemonConfig{
		Addr:        *addr,
		K:           *k,
		Shards:      *shards,
		MaxInflight: *maxInflight,
		CacheCap:    *cacheCap,
		Seed:        *seed,
		Repair:      *repair,
	}
	if *wireAddr != "" {
		cfg.Aux = wire.Hook(*wireAddr, wire.Options{}, func(addr string) {
			fmt.Fprintf(stdout, "peelsim serve: wire protocol listening on %s\n", addr)
		})
	}
	code := service.Serve(ctx, cfg, stdout, stderr)

	if suite != nil {
		fmt.Fprint(stdout, suite.Report())
		if suite.TotalViolations() > 0 {
			fmt.Fprintf(stderr, "peelsim serve: %d invariant violation(s)\n", suite.TotalViolations())
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

// signalContext is the context serve runs under when launched from the
// real process entry point: cancelled by SIGINT/SIGTERM.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
