// Command peelsim regenerates the paper's tables and figures from the
// simulation and analytic models in this repository.
//
// Usage:
//
//	peelsim [flags] <experiment> [<experiment>...]
//	peelsim all
//
// Experiments: fig1 fig3 fig4 fig5 fig6 fig7 state guard approx bandwidth
//
// Flags:
//
//	-samples N     collectives per configuration point (default 40)
//	-seed S        workload/simulation seed (default 1)
//	-frames F      simulation frames per message (default 128)
//	-load L        offered load for Poisson workloads (default 0.30)
//	-quick         reduced-fidelity settings (tests/smoke)
//	-csv           emit comma-separated values instead of aligned tables
//	-check         run with the invariant checker suite armed; any
//	               violation is reported and exits non-zero
//	-chaosfrac F   single mid-flight failure fraction for the chaos experiment
//	-workers N     concurrent simulation runs per sweep, and concurrent
//	               experiments when several are requested (default GOMAXPROCS;
//	               1 = serial, the determinism oracle)
//	-perf          append a perf digest (runs, events/s, speedup, allocs)
//	               to each experiment's notes
//	-cpuprofile F  write a CPU profile to F
//	-memprofile F  write a heap profile to F at exit
//
// Results are byte-identical for any -workers value: every (scheme, X)
// point is an independent deterministic simulation collected by index.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"peel/internal/experiments"
	"peel/internal/invariant"
	"peel/internal/metrics"
)

var runners = map[string]func(experiments.Options) (*experiments.Result, error){
	"fig1":          experiments.Fig1,
	"fig3":          experiments.Fig3,
	"fig4":          experiments.Fig4,
	"fig5":          experiments.Fig5,
	"fig6":          experiments.Fig6,
	"fig7":          experiments.Fig7,
	"state":         experiments.StateTable,
	"guard":         experiments.GuardAblation,
	"approx":        experiments.ApproxStudy,
	"bandwidth":     experiments.BandwidthStudy,
	"fragmentation": experiments.FragmentationStudy,
	"deployment":    experiments.DeploymentStudy,
	"multipath":     experiments.MultipathStudy,
	"allgather":     experiments.AllGatherStudy,
	"loss":          experiments.LossStudy,
	"rail":          experiments.RailStudy,
	"isolation":     experiments.IsolationStudy,
	"chaos":         experiments.ChaosStudy,
}

// order fixes the "all" execution sequence (cheap analytic ones first).
var order = []string{
	"state", "fig1", "fig3", "approx", "fragmentation", "bandwidth",
	"fig7", "guard", "deployment", "multipath", "allgather", "loss", "rail", "isolation", "chaos", "fig4", "fig6", "fig5",
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with the process boundary factored out so tests can
// drive the full flag-parse → run → exit-code path in-process. Exit codes:
// 0 success, 1 experiment failure or invariant violation, 2 usage error.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("peelsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	samples := fs.Int("samples", 0, "collectives per configuration point")
	seed := fs.Int64("seed", 0, "workload/simulation seed")
	frames := fs.Int64("frames", 0, "simulation frames per message")
	load := fs.Float64("load", 0, "offered load for Poisson workloads")
	quick := fs.Bool("quick", false, "reduced-fidelity settings")
	csv := fs.Bool("csv", false, "CSV output")
	check := fs.Bool("check", false, "arm the invariant checker suite; violations exit non-zero")
	chaosFrac := fs.Float64("chaosfrac", 0, "single mid-flight failure fraction for the chaos experiment (0 = sweep)")
	workers := fs.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS, 1 = serial)")
	perf := fs.Bool("perf", false, "append perf digests to experiment notes")
	cpuprofile := fs.String("cpuprofile", "", "write CPU profile to file")
	memprofile := fs.String("memprofile", "", "write heap profile to file at exit")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if err := validateFlags(*samples, *workers, *load, *chaosFrac); err != nil {
		fmt.Fprintf(stderr, "peelsim: %v\n", err)
		return 2
	}
	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	if *samples > 0 {
		opts.Samples = *samples
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *frames > 0 {
		opts.FramesPerMessage = *frames
	}
	if *load > 0 {
		opts.Load = *load
	}
	if *chaosFrac > 0 {
		opts.ChaosFrac = *chaosFrac
	}
	opts.Workers = *workers
	opts.Perf = *perf

	var suite *invariant.Suite
	if *check {
		suite = invariant.NewSuite()
		defer invariant.Enable(suite)()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "peelsim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "peelsim: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	names := fs.Args()
	if len(names) == 1 && names[0] == "all" {
		names = order
	}
	failed := run(names, opts, *csv, stdout, stderr)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(stderr, "peelsim: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "peelsim: %v\n", err)
			return 1
		}
		f.Close()
	}
	return exitCode(failed, suite, stdout, stderr)
}

// validateFlags rejects flag values outside their domains before any
// simulation starts (a usage error, exit code 2).
func validateFlags(samples, workers int, load, chaosFrac float64) error {
	switch {
	case samples < 0:
		return fmt.Errorf("-samples %d must be non-negative", samples)
	case workers < 0:
		return fmt.Errorf("-workers %d must be non-negative", workers)
	case load < 0 || load > 1:
		return fmt.Errorf("-load %v outside [0,1]", load)
	case chaosFrac < 0 || chaosFrac > 1:
		return fmt.Errorf("-chaosfrac %v outside [0,1]", chaosFrac)
	}
	return nil
}

// exitCode folds experiment failures and invariant verdicts into the
// process exit status; with -check it always prints the suite report.
func exitCode(failed int, suite *invariant.Suite, stdout, stderr io.Writer) int {
	if suite != nil {
		fmt.Fprint(stdout, suite.Report())
		if suite.TotalViolations() > 0 {
			fmt.Fprintf(stderr, "peelsim: %d invariant violation(s)\n", suite.TotalViolations())
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// run executes the requested experiments — concurrently when the worker
// budget allows — and prints each result in request order as soon as all
// earlier ones are out. Returns the number of failures.
func run(names []string, opts experiments.Options, csv bool, stdout, stderr io.Writer) int {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type outcome struct {
		out  string // rendered result (stdout)
		errs string // error text (stderr)
		took time.Duration
	}
	outs := make([]outcome, len(names))
	done := make([]chan struct{}, len(names))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, workers)
	for i, name := range names {
		go func(i int, name string) {
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			runFn, ok := runners[strings.ToLower(name)]
			if !ok {
				outs[i].errs = fmt.Sprintf("peelsim: unknown experiment %q\n", name)
				return
			}
			start := time.Now()
			res, err := runFn(opts)
			outs[i].took = time.Since(start)
			if err != nil {
				outs[i].errs = fmt.Sprintf("peelsim: %s: %v\n", name, err)
				return
			}
			if csv {
				outs[i].out = renderCSV(res)
			} else {
				outs[i].out = res.Render()
			}
		}(i, name)
	}
	failed := 0
	for i, name := range names {
		<-done[i]
		if outs[i].errs != "" {
			fmt.Fprint(stderr, outs[i].errs)
			failed++
			continue
		}
		fmt.Fprint(stdout, outs[i].out)
		fmt.Fprintf(stdout, "(%s took %v)\n\n", name, outs[i].took.Round(time.Millisecond))
	}
	return failed
}

func renderCSV(r *experiments.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", r.Name)
	emit := func(kind string, ss []metrics.Series) {
		for _, s := range ss {
			fmt.Fprintf(&b, "%s,%s", kind, s.Label)
			for i := range r.X {
				if i < len(s.Y) {
					fmt.Fprintf(&b, ",%g", s.Y[i])
				} else {
					b.WriteString(",")
				}
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "x,%s", r.XLabel)
	for _, x := range r.X {
		fmt.Fprintf(&b, ",%g", x)
	}
	b.WriteString("\n")
	emit("mean", r.Mean)
	emit("p99", r.P99)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

func usage(fs *flag.FlagSet, stderr io.Writer) {
	fmt.Fprintf(stderr, "usage: peelsim [flags] <experiment>...\nexperiments: %s all\n", strings.Join(order, " "))
	fs.PrintDefaults()
}
