// Command peelsim regenerates the paper's tables and figures from the
// simulation and analytic models in this repository.
//
// Usage:
//
//	peelsim [flags] <experiment> [<experiment>...]
//	peelsim all
//
// Experiments: fig1 fig3 fig4 fig5 fig6 fig7 state guard approx bandwidth
//
// Flags:
//
//	-samples N   collectives per configuration point (default 40)
//	-seed S      workload/simulation seed (default 1)
//	-frames F    simulation frames per message (default 128)
//	-load L      offered load for Poisson workloads (default 0.30)
//	-quick       reduced-fidelity settings (tests/smoke)
//	-csv         emit comma-separated values instead of aligned tables
//	-chaosfrac F single mid-flight failure fraction for the chaos experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"peel/internal/experiments"
	"peel/internal/metrics"
)

var runners = map[string]func(experiments.Options) (*experiments.Result, error){
	"fig1":          experiments.Fig1,
	"fig3":          experiments.Fig3,
	"fig4":          experiments.Fig4,
	"fig5":          experiments.Fig5,
	"fig6":          experiments.Fig6,
	"fig7":          experiments.Fig7,
	"state":         experiments.StateTable,
	"guard":         experiments.GuardAblation,
	"approx":        experiments.ApproxStudy,
	"bandwidth":     experiments.BandwidthStudy,
	"fragmentation": experiments.FragmentationStudy,
	"deployment":    experiments.DeploymentStudy,
	"multipath":     experiments.MultipathStudy,
	"allgather":     experiments.AllGatherStudy,
	"loss":          experiments.LossStudy,
	"rail":          experiments.RailStudy,
	"isolation":     experiments.IsolationStudy,
	"chaos":         experiments.ChaosStudy,
}

// order fixes the "all" execution sequence (cheap analytic ones first).
var order = []string{
	"state", "fig1", "fig3", "approx", "fragmentation", "bandwidth",
	"fig7", "guard", "deployment", "multipath", "allgather", "loss", "rail", "isolation", "chaos", "fig4", "fig6", "fig5",
}

func main() {
	samples := flag.Int("samples", 0, "collectives per configuration point")
	seed := flag.Int64("seed", 0, "workload/simulation seed")
	frames := flag.Int64("frames", 0, "simulation frames per message")
	load := flag.Float64("load", 0, "offered load for Poisson workloads")
	quick := flag.Bool("quick", false, "reduced-fidelity settings")
	csv := flag.Bool("csv", false, "CSV output")
	chaosFrac := flag.Float64("chaosfrac", 0, "single mid-flight failure fraction for the chaos experiment (0 = sweep)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	if *samples > 0 {
		opts.Samples = *samples
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *frames > 0 {
		opts.FramesPerMessage = *frames
	}
	if *load > 0 {
		opts.Load = *load
	}
	if *chaosFrac > 0 {
		opts.ChaosFrac = *chaosFrac
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = order
	}
	failed := 0
	for _, name := range names {
		run, ok := runners[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "peelsim: unknown experiment %q\n", name)
			failed++
			continue
		}
		start := time.Now()
		res, err := run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peelsim: %s: %v\n", name, err)
			failed++
			continue
		}
		if *csv {
			printCSV(res)
		} else {
			fmt.Print(res.Render())
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func printCSV(r *experiments.Result) {
	fmt.Printf("# %s\n", r.Name)
	emit := func(kind string, ss []metrics.Series) {
		for _, s := range ss {
			fmt.Printf("%s,%s", kind, s.Label)
			for i := range r.X {
				if i < len(s.Y) {
					fmt.Printf(",%g", s.Y[i])
				} else {
					fmt.Print(",")
				}
			}
			fmt.Println()
		}
	}
	fmt.Printf("x,%s", r.XLabel)
	for _, x := range r.X {
		fmt.Printf(",%g", x)
	}
	fmt.Println()
	emit("mean", r.Mean)
	emit("p99", r.P99)
	for _, n := range r.Notes {
		fmt.Printf("# %s\n", n)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: peelsim [flags] <experiment>...\nexperiments: %s all\n", strings.Join(order, " "))
	flag.PrintDefaults()
}
