// Command peelsim regenerates the paper's tables and figures from the
// simulation and analytic models in this repository.
//
// Usage:
//
//	peelsim [flags] <experiment> [<experiment>...]
//	peelsim all
//	peelsim serve [-addr A] [-k K] [-shards N] [-max-inflight N] ...
//	peelsim federate [-replicas N] [-ops N] [-kill-every N] [-flap-every N] ...
//	peelsim watch -addr A -groups g0,g1 [-count N] [-timeout D] [-reconnect]
//	peelsim loadgen [-ops N] [-flap-every N] [-propagation push|poll] ...
//
// The serve subcommand runs the multicast control-plane daemon through
// the same service wiring as cmd/peeld (see that command's docs). The
// federate subcommand runs an in-process federated chaos experiment: N
// peeld replicas behind the federation router under a mixed workload
// with scripted link flaps and replica kill/restart, reporting loadgen
// stats plus the final fleet census as JSON (deterministic at
// -workers 1; add -check to gate on the invariant suite). The watch
// subcommand subscribes to groups over a daemon's wire protocol
// (-wire-addr) and prints one JSON line per pushed tree update. The
// loadgen subcommand runs a single-node churn workload; its
// -propagation push|poll modes measure flap-to-client tree-update
// latency over the wire protocol versus the GetTree polling baseline.
//
// Experiments: fig1 fig3 fig4 fig5 fig6 fig7 state guard approx bandwidth
//
// Flags:
//
//	-samples N     collectives per configuration point (default 40)
//	-seed S        workload/simulation seed (default 1)
//	-frames F      simulation frames per message (default 128)
//	-load L        offered load for Poisson workloads (default 0.30)
//	-quick         reduced-fidelity settings (tests/smoke)
//	-csv           emit comma-separated values instead of aligned tables
//	-check         run with the invariant checker suite armed; any
//	               violation is reported and exits non-zero
//	-chaosfrac F   single mid-flight failure fraction for the chaos experiment
//	-repair M      chaos-watchdog recompute mode: "patch" grafts orphaned
//	               receivers into the installed tree (default), "full"
//	               always re-peels from scratch
//	-stripes K     headline stripe count for the striping experiment:
//	               4 (default, striped-peel) or 2 (striped-peel-2)
//	-workers N     concurrent simulation runs per sweep, and concurrent
//	               experiments when several are requested (default GOMAXPROCS;
//	               1 = serial, the determinism oracle)
//	-perf          append a perf digest (runs, events/s, speedup, allocs)
//	               to each experiment's notes
//	-cpuprofile F  write a CPU profile to F
//	-memprofile F  write a heap profile to F at exit
//	-telemetry F       arm the telemetry sink; write the JSON run-report to F
//	                   ("-" = stdout) and append a summary table
//	-telemetry-csv F   write the per-link CSV time series to F (arms the
//	                   sampler; forces -workers 1)
//	-trace-dump F      write the flight-recorder dump to F at exit ("-" = stderr)
//	-trace-frames      record per-frame enqueue/dequeue trace events
//	-trace-events N    flight recorder ring capacity (default 4096)
//
// With telemetry armed, the flight recorder is also dumped to stderr
// automatically when an invariant violation (-check) or a watchdog
// abandonment occurs.
//
// Results are byte-identical for any -workers value: every (scheme, X)
// point is an independent deterministic simulation collected by index.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"peel/internal/experiments"
	"peel/internal/invariant"
	"peel/internal/sim"
	"peel/internal/telemetry"
)

var runners = map[string]func(experiments.Options) (*experiments.Result, error){
	"fig1":          experiments.Fig1,
	"fig3":          experiments.Fig3,
	"fig4":          experiments.Fig4,
	"fig5":          experiments.Fig5,
	"fig6":          experiments.Fig6,
	"fig7":          experiments.Fig7,
	"state":         experiments.StateTable,
	"guard":         experiments.GuardAblation,
	"approx":        experiments.ApproxStudy,
	"bandwidth":     experiments.BandwidthStudy,
	"fragmentation": experiments.FragmentationStudy,
	"deployment":    experiments.DeploymentStudy,
	"multipath":     experiments.MultipathStudy,
	"allgather":     experiments.AllGatherStudy,
	"loss":          experiments.LossStudy,
	"rail":          experiments.RailStudy,
	"isolation":     experiments.IsolationStudy,
	"chaos":         experiments.ChaosStudy,
	"striping":      experiments.StripingStudy,
	"reconfig":      experiments.ReconfigStudy,
	"hetero":        experiments.HeteroStudy,
}

// order fixes the "all" execution sequence (cheap analytic ones first).
var order = []string{
	"state", "fig1", "fig3", "approx", "fragmentation", "bandwidth",
	"fig7", "guard", "deployment", "multipath", "allgather", "striping", "loss", "rail", "isolation", "hetero", "reconfig", "chaos", "fig4", "fig6", "fig5",
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with the process boundary factored out so tests can
// drive the full flag-parse → run → exit-code path in-process. Exit codes:
// 0 success, 1 experiment failure or invariant violation, 2 usage error.
func realMain(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "serve" {
		ctx, stop := signalContext()
		defer stop()
		return serveMain(ctx, args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "federate" {
		ctx, stop := signalContext()
		defer stop()
		return federateMain(ctx, args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "watch" {
		ctx, stop := signalContext()
		defer stop()
		return watchMain(ctx, args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "loadgen" {
		ctx, stop := signalContext()
		defer stop()
		return loadgenMain(ctx, args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("peelsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	samples := fs.Int("samples", 0, "collectives per configuration point")
	seed := fs.Int64("seed", 0, "workload/simulation seed")
	frames := fs.Int64("frames", 0, "simulation frames per message")
	load := fs.Float64("load", 0, "offered load for Poisson workloads")
	quick := fs.Bool("quick", false, "reduced-fidelity settings")
	csv := fs.Bool("csv", false, "CSV output")
	check := fs.Bool("check", false, "arm the invariant checker suite; violations exit non-zero")
	chaosFrac := fs.Float64("chaosfrac", 0, "single mid-flight failure fraction for the chaos experiment (0 = sweep)")
	repair := fs.String("repair", "", "chaos-watchdog recompute mode: patch (graft orphans, default) or full (always re-peel)")
	stripes := fs.Int("stripes", 0, "headline stripe count for the striping experiment: 4 (default) or 2")
	workers := fs.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS, 1 = serial)")
	perf := fs.Bool("perf", false, "append perf digests to experiment notes")
	cpuprofile := fs.String("cpuprofile", "", "write CPU profile to file")
	memprofile := fs.String("memprofile", "", "write heap profile to file at exit")
	telemetryOut := fs.String("telemetry", "", "arm the telemetry sink and write the JSON run-report to file (\"-\" = stdout); also appends a summary table")
	telemetryCSV := fs.String("telemetry-csv", "", "write the per-link CSV time series to file; arms the sampler and forces -workers 1 (run IDs are assignment-ordered)")
	traceDump := fs.String("trace-dump", "", "write the flight-recorder dump to file at exit (\"-\" = stderr)")
	traceFrames := fs.Bool("trace-frames", false, "record per-frame enqueue/dequeue trace events (floods the ring; short runs only)")
	traceEvents := fs.Int("trace-events", 0, "flight recorder capacity in events (0 = 4096)")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if err := validateFlags(*samples, *workers, *load, *chaosFrac, *repair, *stripes); err != nil {
		fmt.Fprintf(stderr, "peelsim: %v\n", err)
		return 2
	}
	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	if *samples > 0 {
		opts.Samples = *samples
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *frames > 0 {
		opts.FramesPerMessage = *frames
	}
	if *load > 0 {
		opts.Load = *load
	}
	if *chaosFrac > 0 {
		opts.ChaosFrac = *chaosFrac
	}
	opts.Repair = *repair
	opts.Stripes = *stripes
	opts.Workers = *workers
	opts.Perf = *perf

	// Any telemetry/trace flag arms the sink; experiments publish into it
	// as they run and the exporters fire after the last one.
	var sink *telemetry.Sink
	if *telemetryOut != "" || *telemetryCSV != "" || *traceDump != "" || *traceFrames {
		sink = telemetry.NewSink(*traceEvents)
		sink.Recorder().SetFrameEvents(*traceFrames)
		defer telemetry.Enable(sink)()
	}
	if *telemetryCSV != "" {
		// Time-series rows are labeled with sink-assigned run IDs, which
		// follow run start order; serialize runs so the CSV is stable.
		opts.Workers = 1
		opts.TelemetrySample = telemetryCSVInterval
	}

	var suite *invariant.Suite
	if *check {
		suite = invariant.NewSuite()
		defer invariant.Enable(suite)()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "peelsim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "peelsim: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	names := fs.Args()
	if len(names) == 1 && names[0] == "all" {
		names = order
	}
	failed := run(names, opts, *csv, stdout, stderr)

	if sink != nil {
		if err := exportTelemetry(sink, strings.Join(names, ","), *telemetryOut, *telemetryCSV, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "peelsim: %v\n", err)
			failed++
		}
	}
	if err := dumpTrace(sink, suite, *traceDump, stderr); err != nil {
		fmt.Fprintf(stderr, "peelsim: %v\n", err)
		failed++
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(stderr, "peelsim: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "peelsim: %v\n", err)
			return 1
		}
		f.Close()
	}
	return exitCode(failed, suite, stdout, stderr)
}

// validateFlags rejects flag values outside their domains before any
// simulation starts (a usage error, exit code 2).
func validateFlags(samples, workers int, load, chaosFrac float64, repair string, stripes int) error {
	switch {
	case samples < 0:
		return fmt.Errorf("-samples %d must be non-negative", samples)
	case workers < 0:
		return fmt.Errorf("-workers %d must be non-negative", workers)
	case load < 0 || load > 1:
		return fmt.Errorf("-load %v outside [0,1]", load)
	case chaosFrac < 0 || chaosFrac > 1:
		return fmt.Errorf("-chaosfrac %v outside [0,1]", chaosFrac)
	case repair != "" && repair != "patch" && repair != "full":
		return fmt.Errorf("-repair %q must be \"patch\" or \"full\"", repair)
	case stripes != 0 && stripes != 2 && stripes != 4:
		return fmt.Errorf("-stripes %d must be 2 or 4", stripes)
	}
	return nil
}

// exitCode folds experiment failures and invariant verdicts into the
// process exit status; with -check it always prints the suite report.
func exitCode(failed int, suite *invariant.Suite, stdout, stderr io.Writer) int {
	if suite != nil {
		fmt.Fprint(stdout, suite.Report())
		if suite.TotalViolations() > 0 {
			fmt.Fprintf(stderr, "peelsim: %d invariant violation(s)\n", suite.TotalViolations())
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// run executes the requested experiments — concurrently when the worker
// budget allows — and prints each result in request order as soon as all
// earlier ones are out. Returns the number of failures.
func run(names []string, opts experiments.Options, csv bool, stdout, stderr io.Writer) int {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type outcome struct {
		out  string // rendered result (stdout)
		errs string // error text (stderr)
		took time.Duration
	}
	outs := make([]outcome, len(names))
	done := make([]chan struct{}, len(names))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, workers)
	for i, name := range names {
		go func(i int, name string) {
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			runFn, ok := runners[strings.ToLower(name)]
			if !ok {
				outs[i].errs = fmt.Sprintf("peelsim: unknown experiment %q\n", name)
				return
			}
			start := time.Now()
			res, err := runFn(opts)
			outs[i].took = time.Since(start)
			if err != nil {
				outs[i].errs = fmt.Sprintf("peelsim: %s: %v\n", name, err)
				return
			}
			if csv {
				outs[i].out = renderCSV(res)
			} else {
				outs[i].out = res.Render()
			}
		}(i, name)
	}
	failed := 0
	for i, name := range names {
		<-done[i]
		if outs[i].errs != "" {
			fmt.Fprint(stderr, outs[i].errs)
			failed++
			continue
		}
		fmt.Fprint(stdout, outs[i].out)
		fmt.Fprintf(stdout, "(%s took %v)\n\n", name, outs[i].took.Round(time.Millisecond))
	}
	return failed
}

func renderCSV(r *experiments.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", r.Name)
	emit := func(kind string, ss []telemetry.Series) {
		for _, s := range ss {
			fmt.Fprintf(&b, "%s,%s", kind, s.Label)
			for i := range r.X {
				if i < len(s.Y) {
					fmt.Fprintf(&b, ",%g", s.Y[i])
				} else {
					b.WriteString(",")
				}
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "x,%s", r.XLabel)
	for _, x := range r.X {
		fmt.Fprintf(&b, ",%g", x)
	}
	b.WriteString("\n")
	emit("mean", r.Mean)
	emit("p99", r.P99)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// telemetryCSVInterval is the simulated sampling period -telemetry-csv
// arms: fine enough to resolve watchdog-scale dynamics (100 µs ticks),
// coarse enough that a full chaos run stays in the tens of rows per link.
const telemetryCSVInterval = 100 * sim.Microsecond

// openOut resolves an output path: "-" is the given default stream (with
// a no-op close), anything else is created as a file.
func openOut(path string, dash io.Writer) (io.Writer, func() error, error) {
	if path == "-" {
		return dash, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// exportTelemetry writes the JSON run-report (and, when requested, the
// CSV time series), then appends the human-readable summary table to the
// experiment output.
func exportTelemetry(sink *telemetry.Sink, label, jsonPath, csvPath string, stdout, stderr io.Writer) error {
	rep := sink.Report(label)
	if jsonPath != "" {
		w, closeOut, err := openOut(jsonPath, stdout)
		if err != nil {
			return err
		}
		err = rep.WriteJSON(w)
		if cerr := closeOut(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("telemetry report: %w", err)
		}
	}
	if csvPath != "" {
		w, closeOut, err := openOut(csvPath, stdout)
		if err != nil {
			return err
		}
		err = sink.WriteCSV(w)
		if cerr := closeOut(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("telemetry csv: %w", err)
		}
	}
	fmt.Fprint(stdout, rep.SummaryTable())
	return nil
}

// dumpTrace writes the flight recorder when explicitly requested
// (-trace-dump) — and automatically to stderr when the run went wrong:
// an invariant violation with -check armed, or a telemetry abort
// (watchdog abandonment). The dump is the black box the recorder exists
// for; a clean run without -trace-dump writes nothing.
func dumpTrace(sink *telemetry.Sink, suite *invariant.Suite, path string, stderr io.Writer) error {
	if sink == nil {
		return nil
	}
	wrong := suite != nil && suite.TotalViolations() > 0
	if reason, ok := sink.Aborted(); ok {
		fmt.Fprintf(stderr, "peelsim: telemetry abort: %s\n", reason)
		wrong = true
	}
	if path == "" {
		if !wrong {
			return nil
		}
		_, err := sink.Recorder().WriteTo(stderr)
		return err
	}
	w, closeOut, err := openOut(path, stderr)
	if err != nil {
		return err
	}
	_, err = sink.Recorder().WriteTo(w)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace dump: %w", err)
	}
	return nil
}

func usage(fs *flag.FlagSet, stderr io.Writer) {
	fmt.Fprintf(stderr, "usage: peelsim [flags] <experiment>...\n       peelsim serve [flags]\n       peelsim federate [flags]\n       peelsim loadgen [flags]\n       peelsim watch [flags]\nexperiments: %s all\n", strings.Join(order, " "))
	fs.PrintDefaults()
}
