// Command peelsim regenerates the paper's tables and figures from the
// simulation and analytic models in this repository.
//
// Usage:
//
//	peelsim [flags] <experiment> [<experiment>...]
//	peelsim all
//
// Experiments: fig1 fig3 fig4 fig5 fig6 fig7 state guard approx bandwidth
//
// Flags:
//
//	-samples N     collectives per configuration point (default 40)
//	-seed S        workload/simulation seed (default 1)
//	-frames F      simulation frames per message (default 128)
//	-load L        offered load for Poisson workloads (default 0.30)
//	-quick         reduced-fidelity settings (tests/smoke)
//	-csv           emit comma-separated values instead of aligned tables
//	-chaosfrac F   single mid-flight failure fraction for the chaos experiment
//	-workers N     concurrent simulation runs per sweep, and concurrent
//	               experiments when several are requested (default GOMAXPROCS;
//	               1 = serial, the determinism oracle)
//	-perf          append a perf digest (runs, events/s, speedup, allocs)
//	               to each experiment's notes
//	-cpuprofile F  write a CPU profile to F
//	-memprofile F  write a heap profile to F at exit
//
// Results are byte-identical for any -workers value: every (scheme, X)
// point is an independent deterministic simulation collected by index.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"peel/internal/experiments"
	"peel/internal/metrics"
)

var runners = map[string]func(experiments.Options) (*experiments.Result, error){
	"fig1":          experiments.Fig1,
	"fig3":          experiments.Fig3,
	"fig4":          experiments.Fig4,
	"fig5":          experiments.Fig5,
	"fig6":          experiments.Fig6,
	"fig7":          experiments.Fig7,
	"state":         experiments.StateTable,
	"guard":         experiments.GuardAblation,
	"approx":        experiments.ApproxStudy,
	"bandwidth":     experiments.BandwidthStudy,
	"fragmentation": experiments.FragmentationStudy,
	"deployment":    experiments.DeploymentStudy,
	"multipath":     experiments.MultipathStudy,
	"allgather":     experiments.AllGatherStudy,
	"loss":          experiments.LossStudy,
	"rail":          experiments.RailStudy,
	"isolation":     experiments.IsolationStudy,
	"chaos":         experiments.ChaosStudy,
}

// order fixes the "all" execution sequence (cheap analytic ones first).
var order = []string{
	"state", "fig1", "fig3", "approx", "fragmentation", "bandwidth",
	"fig7", "guard", "deployment", "multipath", "allgather", "loss", "rail", "isolation", "chaos", "fig4", "fig6", "fig5",
}

func main() {
	samples := flag.Int("samples", 0, "collectives per configuration point")
	seed := flag.Int64("seed", 0, "workload/simulation seed")
	frames := flag.Int64("frames", 0, "simulation frames per message")
	load := flag.Float64("load", 0, "offered load for Poisson workloads")
	quick := flag.Bool("quick", false, "reduced-fidelity settings")
	csv := flag.Bool("csv", false, "CSV output")
	chaosFrac := flag.Float64("chaosfrac", 0, "single mid-flight failure fraction for the chaos experiment (0 = sweep)")
	workers := flag.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS, 1 = serial)")
	perf := flag.Bool("perf", false, "append perf digests to experiment notes")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file at exit")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	if *samples > 0 {
		opts.Samples = *samples
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *frames > 0 {
		opts.FramesPerMessage = *frames
	}
	if *load > 0 {
		opts.Load = *load
	}
	if *chaosFrac > 0 {
		opts.ChaosFrac = *chaosFrac
	}
	opts.Workers = *workers
	opts.Perf = *perf

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peelsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "peelsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = order
	}
	failed := run(names, opts, *csv)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peelsim: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "peelsim: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// run executes the requested experiments — concurrently when the worker
// budget allows — and prints each result in request order as soon as all
// earlier ones are out. Returns the number of failures.
func run(names []string, opts experiments.Options, csv bool) int {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type outcome struct {
		out  string // rendered result (stdout)
		errs string // error text (stderr)
		took time.Duration
	}
	outs := make([]outcome, len(names))
	done := make([]chan struct{}, len(names))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, workers)
	for i, name := range names {
		go func(i int, name string) {
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			runFn, ok := runners[strings.ToLower(name)]
			if !ok {
				outs[i].errs = fmt.Sprintf("peelsim: unknown experiment %q\n", name)
				return
			}
			start := time.Now()
			res, err := runFn(opts)
			outs[i].took = time.Since(start)
			if err != nil {
				outs[i].errs = fmt.Sprintf("peelsim: %s: %v\n", name, err)
				return
			}
			if csv {
				outs[i].out = renderCSV(res)
			} else {
				outs[i].out = res.Render()
			}
		}(i, name)
	}
	failed := 0
	for i, name := range names {
		<-done[i]
		if outs[i].errs != "" {
			fmt.Fprint(os.Stderr, outs[i].errs)
			failed++
			continue
		}
		fmt.Print(outs[i].out)
		fmt.Printf("(%s took %v)\n\n", name, outs[i].took.Round(time.Millisecond))
	}
	return failed
}

func renderCSV(r *experiments.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", r.Name)
	emit := func(kind string, ss []metrics.Series) {
		for _, s := range ss {
			fmt.Fprintf(&b, "%s,%s", kind, s.Label)
			for i := range r.X {
				if i < len(s.Y) {
					fmt.Fprintf(&b, ",%g", s.Y[i])
				} else {
					b.WriteString(",")
				}
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "x,%s", r.XLabel)
	for _, x := range r.X {
		fmt.Fprintf(&b, ",%g", x)
	}
	b.WriteString("\n")
	emit("mean", r.Mean)
	emit("p99", r.P99)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: peelsim [flags] <experiment>...\nexperiments: %s all\n", strings.Join(order, " "))
	flag.PrintDefaults()
}
