package main

import (
	"context"
	"strings"
	"testing"
)

func TestServeMainUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := serveMain(context.Background(), []string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := serveMain(context.Background(), []string{"extra"}, &out, &errOut); code != 2 {
		t.Fatalf("stray argument: exit %d, want 2", code)
	}
}

// TestServeMainDrains drives the shared daemon wiring through the
// peelsim subcommand with a cancelled context: bind, drain, exit 0.
func TestServeMainDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	code := serveMain(ctx, []string{"-addr", "127.0.0.1:0", "-k", "4", "-shards", "4", "-max-inflight", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("drain output missing: %q", out.String())
	}
	if !strings.Contains(out.String(), "4 shards") || !strings.Contains(out.String(), "max-inflight 2") {
		t.Fatalf("flag plumbing not reflected in banner: %q", out.String())
	}
}

// TestRealMainDispatchesServe checks the subcommand is reachable through
// the real argument path (a usage error keeps it from blocking).
func TestRealMainDispatchesServe(t *testing.T) {
	var out, errOut strings.Builder
	if code := realMain([]string{"serve", "-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("serve dispatch: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "peelsim serve") {
		t.Fatalf("serve flag-set name missing from error: %q", errOut.String())
	}
}
