package main

import (
	"bytes"
	"strings"
	"testing"

	"peel/internal/invariant"
)

// End-to-end exit-code contract of realMain: 0 clean, 1 failure or
// invariant violation, 2 usage error.

func TestRealMainUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no experiments", nil},
		{"undefined flag", []string{"-no-such-flag", "fig1"}},
		{"negative samples", []string{"-samples", "-3", "fig1"}},
		{"negative workers", []string{"-workers", "-1", "fig1"}},
		{"load above 1", []string{"-load", "1.5", "fig1"}},
		{"chaosfrac above 1", []string{"-chaosfrac", "2", "chaos"}},
	}
	for _, tc := range cases {
		var out, errOut bytes.Buffer
		if code := realMain(tc.args, &out, &errOut); code != 2 {
			t.Errorf("%s: exit code %d, want 2 (stderr: %s)", tc.name, code, errOut.String())
		}
	}
}

func TestRealMainUnknownExperimentFails(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := realMain([]string{"-quick", "nonesuch"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr missing diagnosis: %s", errOut.String())
	}
}

func TestRealMainCheckedRunIsCleanAndReports(t *testing.T) {
	var out, errOut bytes.Buffer
	code := realMain([]string{"-quick", "-samples", "2", "-check", "state", "fig1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "invariant") {
		t.Fatalf("-check did not print the suite report:\n%s", out.String())
	}
}

func TestExitCodeOnViolatedSuite(t *testing.T) {
	s := invariant.NewSuite()
	s.Violatef(invariant.SimTimeMonotone, "synthetic violation for the exit-code test")
	var out, errOut bytes.Buffer
	if code := exitCode(0, s, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "invariant violation") {
		t.Fatalf("stderr missing violation notice: %s", errOut.String())
	}
}

func TestExitCodeFoldsExperimentFailures(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := exitCode(2, nil, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if code := exitCode(0, nil, &out, &errOut); code != 0 {
		t.Fatalf("clean exit code %d, want 0", code)
	}
}
