// Command benchjson converts `go test -bench` output on stdin into the
// repository's BENCH_*.json schema on stdout (see internal/perfstats).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson -label after -note "post-optimization" > BENCH_after.json
//
// scripts/bench.sh wraps the full capture-and-convert flow.
package main

import (
	"flag"
	"fmt"
	"os"

	"peel/internal/perfstats"
)

func main() {
	label := flag.String("label", "", "report label (e.g. baseline, after)")
	note := flag.String("note", "", "free-form context for the report")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}
	benches, err := perfstats.ParseGoBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep := perfstats.NewBenchReport(*label, *note, benches)
	if err := rep.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
